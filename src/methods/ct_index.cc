#include "methods/ct_index.h"

#include "isomorphism/match_core.h"

namespace igq {
namespace {

/// PreparedQuery carrying the query's fingerprint.
class CtPreparedQuery : public PreparedQuery {
 public:
  CtPreparedQuery(const Graph& query, Fingerprint fingerprint)
      : PreparedQuery(query), fingerprint_(std::move(fingerprint)) {}

  const Fingerprint& fingerprint() const { return fingerprint_; }

 private:
  Fingerprint fingerprint_;
};

}  // namespace

Fingerprint CtIndexMethod::FingerprintOf(const Graph& graph) const {
  Fingerprint fp(options_.fingerprint_bits);
  TreeEnumeratorOptions tree_options;
  tree_options.max_vertices = options_.max_tree_vertices;
  tree_options.max_instances = options_.max_instances_per_graph;
  const TreeFeatureResult trees = CountTreeFeatures(graph, tree_options);
  CycleEnumeratorOptions cycle_options;
  cycle_options.max_vertices = options_.max_cycle_vertices;
  cycle_options.max_instances = options_.max_instances_per_graph;
  const CycleFeatureResult cycles = CountCycleFeatures(graph, cycle_options);
  if (trees.saturated || cycles.saturated) {
    fp.Saturate();
    return fp;
  }
  for (const auto& [canonical, count] : trees.counts) {
    (void)count;
    fp.AddFeature(canonical);
  }
  for (const auto& [canonical, count] : cycles.counts) {
    (void)count;
    fp.AddFeature(canonical);
  }
  return fp;
}

void CtIndexMethod::Build(const GraphDatabase& db) {
  db_ = &db;
  fingerprints_.clear();
  fingerprints_.reserve(db.graphs.size());
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    // Tombstoned graphs get an all-zero fingerprint instead of an
    // enumeration pass; Filter() subtracts the tombstone set anyway (an
    // all-zero fingerprint would still cover an all-zero query).
    fingerprints_.push_back(db.IsLive(id) ? FingerprintOf(db.graphs[id])
                                          : Fingerprint(options_.fingerprint_bits));
  }
  // CSR views of every dataset graph, built once and shared by all
  // Verify() calls (cheap next to tree/cycle enumeration).
  target_views_.Build(db.graphs);
}

std::unique_ptr<PreparedQuery> CtIndexMethod::Prepare(
    const Graph& query) const {
  return std::make_unique<CtPreparedQuery>(query, FingerprintOf(query));
}

std::vector<GraphId> CtIndexMethod::Filter(
    const PreparedQuery& prepared) const {
  const auto& pq = static_cast<const CtPreparedQuery&>(prepared);
  std::vector<GraphId> candidates;
  for (GraphId id = 0; id < fingerprints_.size(); ++id) {
    if (fingerprints_[id].CoversAllBitsOf(pq.fingerprint())) {
      candidates.push_back(id);
    }
  }
  if (db_ == nullptr || db_->tombstones.empty() || candidates.empty()) {
    return candidates;
  }
  // No incremental hooks here (mutation falls back to a full Build), but a
  // snapshot-restored or freshly built index over a mutated database still
  // must never surface a removed graph.
  std::vector<GraphId> live;
  live.reserve(candidates.size());
  db_->tombstone_set.Partition(candidates, /*kept=*/nullptr, &live);
  return live;
}

bool CtIndexMethod::Verify(const PreparedQuery& prepared, GraphId id) const {
  return PlanContains(prepared.plan(), target_views_.view(id),
                      MatchContext::ThreadLocal());
}

size_t CtIndexMethod::IndexMemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Fingerprint& fp : fingerprints_) bytes += fp.MemoryBytes();
  return bytes;
}

}  // namespace igq
