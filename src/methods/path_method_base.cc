#include "methods/path_method_base.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>

#include "common/id_set.h"
#include "serving/budget.h"
#include "snapshot/serializer.h"

namespace igq {
namespace {

/// Payload version of the serialized path-method index.
constexpr uint32_t kPathIndexVersion = 1;

// Per-graph aggregation buffer: feature -> (count, locations).
struct FeatureAggregate {
  uint32_t count = 0;
  std::vector<VertexId> locations;
};
using GraphFeatureMap = std::map<PathKey, FeatureAggregate>;

GraphFeatureMap AggregateGraph(const Graph& graph,
                               const PathEnumeratorOptions& options,
                               bool keep_locations) {
  GraphFeatureMap features;
  EnumeratePaths(graph, options,
                 [&features, keep_locations](PathKey key, VertexId start) {
                   FeatureAggregate& agg = features[key];
                   ++agg.count;
                   if (keep_locations) agg.locations.push_back(start);
                 });
  return features;
}

}  // namespace

void PathMethodBase::Build(const GraphDatabase& db) {
  db_ = &db;
  // Build may run again over a mutated database (the engines' rebuild
  // fallback); start from an empty trie, never accumulate.
  trie_ = PathTrie(options_.store_locations);
  const size_t num_graphs = db.graphs.size();
  const size_t threads =
      std::min(options_.build_threads == 0 ? size_t{1} : options_.build_threads,
               num_graphs == 0 ? size_t{1} : num_graphs);

  // Each worker enumerates a slice of graphs into local per-graph maps; the
  // maps are merged into the shared trie under a lock, in ascending graph-id
  // order so postings lists stay sorted (this mirrors Grapes' per-thread
  // trie construction followed by a merge step).
  // Tombstoned graphs are skipped outright — their per-graph maps stay
  // empty, so they get no postings and can never filter through. The
  // incremental path (OnRemoveGraph) reaches the same candidate sets by
  // subtracting the tombstone set in Filter() instead.
  std::vector<GraphFeatureMap> per_graph(num_graphs);
  if (threads <= 1) {
    for (size_t i = 0; i < num_graphs; ++i) {
      if (!db.IsLive(static_cast<GraphId>(i))) continue;
      per_graph[i] = AggregateGraph(db.graphs[i], EnumeratorOptions(),
                                    options_.store_locations);
    }
  } else {
    std::vector<std::thread> workers;
    std::mutex mutex;
    size_t next = 0;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([this, &db, &per_graph, &mutex, &next, num_graphs] {
        for (;;) {
          size_t index;
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (next >= num_graphs) return;
            index = next++;
          }
          if (!db.IsLive(static_cast<GraphId>(index))) continue;
          per_graph[index] = AggregateGraph(db.graphs[index],
                                            EnumeratorOptions(),
                                            options_.store_locations);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  for (size_t i = 0; i < num_graphs; ++i) {
    for (const auto& [key, agg] : per_graph[i]) {
      trie_.Add(key, static_cast<GraphId>(i), agg.count,
                options_.store_locations ? &agg.locations : nullptr);
    }
    per_graph[i].clear();
  }

  // Verification substrate: CSR views of every dataset graph, built once
  // here and reused by every Verify() call of every future query.
  target_views_.Build(db.graphs);
}

bool PathMethodBase::SaveIndex(std::ostream& out) const {
  if (db_ == nullptr) return false;  // never built
  snapshot::BinaryWriter writer(out);
  writer.WriteU32(kPathIndexVersion);
  writer.WriteU32(static_cast<uint32_t>(options_.max_path_edges));
  writer.WriteU8(options_.store_locations ? 1 : 0);
  trie_.Save(writer);
  return writer.ok();
}

bool PathMethodBase::LoadIndex(const GraphDatabase& db, std::istream& in) {
  snapshot::BinaryReader reader(in);
  uint32_t version = 0, max_path_edges = 0;
  uint8_t store_locations = 0;
  if (!reader.ReadU32(&version) || version != kPathIndexVersion) return false;
  if (!reader.ReadU32(&max_path_edges) || !reader.ReadU8(&store_locations)) {
    return false;
  }
  if (max_path_edges != options_.max_path_edges ||
      (store_locations != 0) != options_.store_locations) {
    return false;  // index built under a different configuration
  }
  PathTrie trie(options_.store_locations);
  if (!trie.Load(reader, static_cast<uint32_t>(db.graphs.size()),
                 std::span<const Graph>(db.graphs))) {
    return false;
  }
  if (trie.store_locations() != options_.store_locations) return false;
  trie_ = std::move(trie);
  db_ = &db;
  // Derived data, never serialized: rebuild the verification views over
  // the restored dataset (cheap next to path enumeration).
  target_views_.Build(db.graphs);
  return true;
}

std::unique_ptr<PreparedQuery> PathMethodBase::Prepare(
    const Graph& query) const {
  return std::make_unique<PathPreparedQuery>(
      query, CountPathFeatures(query, EnumeratorOptions()));
}

namespace {

/// candidates \ db.tombstones, preserving order. The tombstone set is the
/// database's adaptive IdSet, so this is the sorted-span form of
/// IdSet::Difference (one membership Partition; bitmap probes or a
/// merge-walk depending on the set's representation).
std::vector<GraphId> DropTombstoned(const GraphDatabase& db,
                                    std::vector<GraphId> candidates) {
  if (db.tombstones.empty() || candidates.empty()) return candidates;
  std::vector<GraphId> live;
  live.reserve(candidates.size());
  db.tombstone_set.Partition(candidates, /*kept=*/nullptr, &live);
  return live;
}

}  // namespace

std::vector<GraphId> PathMethodBase::Filter(
    const PreparedQuery& prepared) const {
  const auto& pq = static_cast<const PathPreparedQuery&>(prepared);
  const PathFeatureCounts& features = pq.features();
  if (db_ == nullptr) return {};
  if (features.empty()) {
    // A query with no features (empty graph) is contained everywhere —
    // everywhere still alive.
    std::vector<GraphId> all(db_->graphs.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<GraphId>(i);
    return DropTombstoned(*db_, std::move(all));
  }

  // Counting intersection: each feature contributes at most one tally per
  // graph, so a graph is a candidate iff its tally equals the number of
  // distinct query features. One pass over the postings; the tally array
  // is this thread's reusable scratch (Filter runs concurrently across
  // serving streams, so the scratch must be thread-local, never a member).
  std::vector<uint32_t>& matched =
      IdSetScratch::ThreadLocal().Tally(db_->graphs.size());
  serving::QueryControl* control = prepared.control();
  for (const auto& [key, query_count] : features) {
    // Budget checkpoint between feature postings-chunks; the engine treats
    // a stopped filter's candidates as garbage, so returning the partial
    // tally is fine.
    if (control != nullptr && control->CheckNow()) return {};
    const std::vector<PathPosting>* postings = trie_.Find(key);
    if (postings == nullptr) return {};  // feature absent from every graph
    for (const PathPosting& posting : *postings) {
      if (posting.count >= query_count) ++matched[posting.graph_id];
    }
  }
  const uint32_t required = static_cast<uint32_t>(features.size());
  std::vector<GraphId> candidates;
  for (GraphId id = 0; id < matched.size(); ++id) {
    if (matched[id] == required) candidates.push_back(id);
  }
  // Removed graphs may still hold postings (OnRemoveGraph leaves the trie
  // untouched); subtract them here so the incremental index answers exactly
  // as a fresh Build would.
  return DropTombstoned(*db_, std::move(candidates));
}

bool PathMethodBase::OnAddGraph(const GraphDatabase& db, GraphId id) {
  if (db_ != &db) return false;  // built over a different database
  if (static_cast<size_t>(id) + 1 != db.graphs.size() ||
      target_views_.size() != static_cast<size_t>(id)) {
    return false;  // ids must extend the index contiguously
  }
  const GraphFeatureMap features = AggregateGraph(
      db.graphs[id], EnumeratorOptions(), options_.store_locations);
  // `id` is the maximum id the trie has ever seen, so appending keeps every
  // postings list sorted — the invariant PathTrie::Add asserts.
  for (const auto& [key, agg] : features) {
    trie_.Add(key, id, agg.count,
              options_.store_locations ? &agg.locations : nullptr);
  }
  target_views_.Append(db.graphs[id]);
  return true;
}

bool PathMethodBase::OnRemoveGraph(const GraphDatabase& db, GraphId) {
  // Nothing to unindex: the dead graph's postings stay behind and Filter()
  // subtracts the database's tombstone set (see DropTombstoned above).
  return db_ == &db;
}

}  // namespace igq
