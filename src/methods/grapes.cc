#include "methods/grapes.h"

#include <algorithm>
#include <deque>

#include "isomorphism/vf2.h"

namespace igq {

bool GrapesMethod::Verify(const PreparedQuery& prepared, GraphId id) const {
  const auto& pq = static_cast<const PathPreparedQuery&>(prepared);
  const Graph& query = pq.query();
  const Graph& target = db()->graphs[id];

  // Covered vertex set: start locations of any query feature of length >= 1
  // edge (every vertex of a potential embedding starts such an instance —
  // see DESIGN.md §6 — so restricting VF2 to this set is lossless).
  std::vector<bool> covered(target.NumVertices(), false);
  size_t covered_count = 0;
  for (const auto& [key, query_count] : pq.features()) {
    (void)query_count;
    if (PathKeyLength(key) < 2) continue;  // single-vertex features dilute
    const std::vector<PathPosting>* postings = trie().Find(key);
    if (postings == nullptr) continue;
    // Postings are sorted by graph id (built in ascending order).
    auto it = std::lower_bound(postings->begin(), postings->end(), id,
                               [](const PathPosting& p, GraphId g) {
                                 return p.graph_id < g;
                               });
    if (it == postings->end() || it->graph_id != id) continue;
    for (VertexId v : it->locations) {
      if (!covered[v]) {
        covered[v] = true;
        ++covered_count;
      }
    }
  }
  if (covered_count < query.NumVertices()) return false;

  // Connected components of the covered set; VF2 runs per component, so a
  // huge candidate graph is verified only on its (typically small) covered
  // regions.
  std::vector<bool> visited(target.NumVertices(), false);
  std::vector<VertexId> component;
  for (VertexId seed = 0; seed < target.NumVertices(); ++seed) {
    if (!covered[seed] || visited[seed]) continue;
    component.clear();
    std::deque<VertexId> frontier{seed};
    visited[seed] = true;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      component.push_back(v);
      for (VertexId w : target.Neighbors(v)) {
        if (covered[w] && !visited[w]) {
          visited[w] = true;
          frontier.push_back(w);
        }
      }
    }
    if (component.size() < query.NumVertices()) continue;
    std::vector<bool> allowed(target.NumVertices(), false);
    for (VertexId v : component) allowed[v] = true;
    if (Vf2Matcher::FindEmbeddingRestricted(query, target, &allowed)
            .has_value()) {
      return true;
    }
  }
  return false;
}

}  // namespace igq
