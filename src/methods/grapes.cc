#include "methods/grapes.h"

#include <algorithm>
#include <vector>

#include "isomorphism/match_core.h"

namespace igq {
namespace {

// Per-thread buffers for the covered-set / component walk, reused across
// Verify() calls so the location-aware path allocates nothing after
// warm-up (the matching itself runs in the shared MatchContext arena).
struct GrapesScratch {
  std::vector<uint8_t> covered;
  std::vector<uint8_t> visited;
  std::vector<VertexId> component;
  std::vector<VertexId> frontier;

  static GrapesScratch& ThreadLocal() {
    thread_local GrapesScratch scratch;
    return scratch;
  }
};

}  // namespace

bool GrapesMethod::Verify(const PreparedQuery& prepared, GraphId id) const {
  const auto& pq = static_cast<const PathPreparedQuery&>(prepared);
  const Graph& query = pq.query();
  const CsrGraphView& target = target_view(id);  // prebuilt at Build()
  if (query.NumVertices() > target.NumVertices() ||
      query.NumEdges() > target.NumEdges()) {
    return false;
  }

  GrapesScratch& scratch = GrapesScratch::ThreadLocal();
  const size_t n = target.NumVertices();

  // Covered vertex set: start locations of any query feature of length >= 1
  // edge (every vertex of a potential embedding starts such an instance —
  // see DESIGN.md §6 — so restricting the search to this set is lossless).
  scratch.covered.assign(n, 0);
  size_t covered_count = 0;
  for (const auto& [key, query_count] : pq.features()) {
    (void)query_count;
    if (PathKeyLength(key) < 2) continue;  // single-vertex features dilute
    const std::vector<PathPosting>* postings = trie().Find(key);
    if (postings == nullptr) continue;
    // Postings are sorted by graph id (built in ascending order).
    auto it = std::lower_bound(postings->begin(), postings->end(), id,
                               [](const PathPosting& p, GraphId g) {
                                 return p.graph_id < g;
                               });
    if (it == postings->end() || it->graph_id != id) continue;
    for (VertexId v : it->locations) {
      if (!scratch.covered[v]) {
        scratch.covered[v] = 1;
        ++covered_count;
      }
    }
  }
  if (covered_count < query.NumVertices()) return false;

  MatchContext& ctx = MatchContext::ThreadLocal();

  // Connected components of the covered set; the matcher runs per
  // component, so a huge candidate graph is verified only on its (typically
  // small) covered regions.
  scratch.visited.assign(n, 0);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (!scratch.covered[seed] || scratch.visited[seed]) continue;
    scratch.component.clear();
    scratch.frontier.clear();
    scratch.frontier.push_back(seed);
    scratch.visited[seed] = 1;
    // frontier doubles as a BFS queue; `head` walks it in place.
    for (size_t head = 0; head < scratch.frontier.size(); ++head) {
      const VertexId v = scratch.frontier[head];
      scratch.component.push_back(v);
      for (VertexId w : target.Neighbors(v)) {
        if (scratch.covered[w] && !scratch.visited[w]) {
          scratch.visited[w] = 1;
          scratch.frontier.push_back(w);
        }
      }
    }
    if (scratch.component.size() < query.NumVertices()) continue;
    ScopedAllowed allowed(ctx, n);
    for (VertexId v : scratch.component) allowed.Allow(v);
    if (PlanContains(prepared.plan(), target, ctx)) return true;
  }
  return false;
}

}  // namespace igq
