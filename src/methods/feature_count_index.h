// The paper's supergraph index (Algorithms 1 and 2, §6.2): a feature trie
// storing per-graph occurrence counts plus the number of distinct features
// NF[g] of every indexed graph. Given a query q it returns the graphs all of
// whose features occur in q at least as often — the candidate set of
// potential *subgraphs of q*, with no false negatives.
//
// The same structure serves two roles in this repository:
//   * iGQ's Isuper component (over cached query graphs), and
//   * the baseline supergraph-query method M_super (over dataset graphs).
#ifndef IGQ_METHODS_FEATURE_COUNT_INDEX_H_
#define IGQ_METHODS_FEATURE_COUNT_INDEX_H_

#include <vector>

#include "common/id_set.h"
#include "features/feature_set.h"
#include "features/path_enumerator.h"
#include "methods/method.h"
#include "methods/path_method_base.h"
#include "methods/path_trie.h"

namespace igq {
namespace snapshot {
class BinaryReader;
class BinaryWriter;
}  // namespace snapshot

/// Algorithm 1's index: trie of features with {graph, occurrences} postings
/// and per-graph distinct-feature counts.
class FeatureCountIndex {
 public:
  explicit FeatureCountIndex(const PathEnumeratorOptions& options = {})
      : options_(options) {}

  /// Indexes `graph` under `id`. Ids must be added in increasing order.
  void AddGraph(GraphId id, const Graph& graph);

  /// Algorithm 2: ids of indexed graphs that may be subgraphs of `query`
  /// (every indexed feature of the graph occurs in the query with at least
  /// the graph's multiplicity). No false negatives. Candidates come back
  /// sorted ascending.
  std::vector<GraphId> FindPotentialSubgraphsOf(const Graph& query) const;

  /// Same, reusing precomputed query features (must come from the same
  /// PathEnumeratorOptions).
  std::vector<GraphId> FindPotentialSubgraphsOf(
      const PathFeatureCounts& query_features) const;

  /// Out-parameter form: fills `out` (cleared first, capacity reused). The
  /// per-graph cover tally runs in the calling thread's IdSetScratch, so a
  /// steady-state probe performs zero heap allocations — this is the form
  /// the Isuper probe index calls (`bench_micro_core --smoke` gates it).
  void FindPotentialSubgraphsOf(const PathFeatureCounts& query_features,
                                std::vector<GraphId>* out) const;

  size_t NumGraphs() const { return num_indexed_; }
  size_t MemoryBytes() const;
  const PathEnumeratorOptions& options() const { return options_; }

  /// Serializes the index (enumerator options, trie, NF table, empty-graph
  /// list) for warm starts.
  void Save(snapshot::BinaryWriter& writer) const;

  /// Restores an index saved by Save(). Fails (returning false, leaving
  /// this object unchanged) on malformed input, enumerator options that
  /// differ from this instance's, or graph ids >= `num_graphs`.
  bool Load(snapshot::BinaryReader& reader, uint32_t num_graphs);

 private:
  /// Sentinel for ids inside the universe that were never indexed (only
  /// reachable through externally produced payloads): never a candidate.
  static constexpr uint32_t kNotIndexed = 0xffffffffu;

  PathEnumeratorOptions options_;
  PathTrie trie_{/*store_locations=*/false};
  /// NF[g], dense by graph id (the tally scan walks it in id order — that
  /// is what makes the candidate list come out sorted with no extra sort).
  /// A graph with NF 0 (zero vertices) is vacuously a subgraph of any
  /// query and surfaces from the scan directly.
  std::vector<uint32_t> nf_;
  size_t num_indexed_ = 0;
};

/// Baseline M_super: FeatureCountIndex over the dataset + VF2 verification.
/// Prepare() extracts the query's path features once, so Filter() and every
/// Verify() share them — the same amortization the subgraph methods enjoy.
class FeatureCountSupergraphMethod : public Method {
 public:
  explicit FeatureCountSupergraphMethod(
      const PathEnumeratorOptions& options = {})
      : index_(options) {}

  std::string Name() const override { return "FeatureCount"; }

  QueryDirection Direction() const override {
    return QueryDirection::kSupergraph;
  }

  void Build(const GraphDatabase& db) override;

  std::unique_ptr<PreparedQuery> Prepare(const Graph& query) const override {
    return std::make_unique<PathPreparedQuery>(
        query, CountPathFeatures(query, index_.options()));
  }

  /// Algorithm 2 over the feature trie, minus the database's tombstone set
  /// (removed graphs may still hold postings/NF rows between a mutation and
  /// the next full Build).
  std::vector<GraphId> Filter(const PreparedQuery& prepared) const override;

  /// True iff graphs[id] ⊆ query.
  bool Verify(const PreparedQuery& prepared, GraphId id) const override;

  size_t IndexMemoryBytes() const override { return index_.MemoryBytes(); }

  /// Index persistence (see Method): serializes/restores the feature trie
  /// and NF table directly instead of re-enumerating the dataset.
  bool SaveIndex(std::ostream& out) const override;
  bool LoadIndex(const GraphDatabase& db, std::istream& in) override;

  /// Incremental maintenance (see Method). OnAddGraph extends the trie, NF
  /// table and pattern-plan vector by the one new graph (ids only grow, so
  /// the index's increasing-id contract holds); OnRemoveGraph leaves the
  /// index untouched — the dead graph's NF row survives, and Filter()
  /// subtracts the database's tombstone set instead.
  bool OnAddGraph(const GraphDatabase& db, GraphId id) override;
  bool OnRemoveGraph(const GraphDatabase& db, GraphId id) override;

 private:
  FeatureCountIndex index_;
  const GraphDatabase* db_ = nullptr;
  /// Search plans of every dataset graph, precompiled at Build/LoadIndex:
  /// in the supergraph direction the STORED graphs are the patterns, so
  /// their variable orders never depend on the query and can be reused
  /// across all queries (docs/PERFORMANCE.md).
  std::vector<MatchPlan> pattern_plans_;
};

}  // namespace igq

#endif  // IGQ_METHODS_FEATURE_COUNT_INDEX_H_
