#include "methods/method.h"

namespace igq {

const char* QueryDirectionName(QueryDirection direction) {
  return direction == QueryDirection::kSubgraph ? "subgraph" : "supergraph";
}

bool Method::SaveIndex(std::ostream&) const { return false; }

bool Method::LoadIndex(const GraphDatabase&, std::istream&) { return false; }

void GraphDatabase::RefreshLabelCount() {
  num_labels = 0;
  if (graphs.empty()) return;
  size_t bound = 0;
  for (const Graph& g : graphs) {
    const size_t b = g.LabelUpperBound();
    if (b > bound) bound = b;
  }
  if (bound == 0) return;  // only empty graphs stored
  std::vector<bool> seen(bound, false);
  size_t distinct = 0;
  for (const Graph& g : graphs) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!seen[g.label(v)]) {
        seen[g.label(v)] = true;
        ++distinct;
      }
    }
  }
  num_labels = distinct;
}

}  // namespace igq
