#include "methods/method.h"

#include <algorithm>

namespace igq {

const char* QueryDirectionName(QueryDirection direction) {
  return direction == QueryDirection::kSubgraph ? "subgraph" : "supergraph";
}

bool Method::SaveIndex(std::ostream&) const { return false; }

bool Method::LoadIndex(const GraphDatabase&, std::istream&) { return false; }

bool Method::OnAddGraph(const GraphDatabase&, GraphId) { return false; }

bool Method::OnRemoveGraph(const GraphDatabase&, GraphId) { return false; }

void GraphDatabase::RefreshLabelCount() {
  num_labels = 0;
  label_seen.clear();
  label_seen_primed = true;
  if (graphs.empty()) return;
  size_t bound = 0;
  for (const Graph& g : graphs) {
    const size_t b = g.LabelUpperBound();
    if (b > bound) bound = b;
  }
  if (bound == 0) return;  // only empty graphs stored
  label_seen.assign(bound, 0);
  size_t distinct = 0;
  for (const Graph& g : graphs) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!label_seen[g.label(v)]) {
        label_seen[g.label(v)] = 1;
        ++distinct;
      }
    }
  }
  num_labels = distinct;
}

GraphId GraphDatabase::AddGraph(Graph graph) {
  const GraphId id = static_cast<GraphId>(graphs.size());
  graphs.push_back(std::move(graph));
  if (label_seen_primed) {
    // O(new graph) label-domain update through the seen cache; removal never
    // shrinks the domain, so the cache only ever grows.
    const Graph& added = graphs.back();
    const size_t bound = added.LabelUpperBound();
    if (label_seen.size() < bound) label_seen.resize(bound, 0);
    for (VertexId v = 0; v < added.NumVertices(); ++v) {
      if (!label_seen[added.label(v)]) {
        label_seen[added.label(v)] = 1;
        ++num_labels;
      }
    }
  } else {
    RefreshLabelCount();
  }
  // The universe grew; re-derive the adaptive form over the new size.
  tombstone_set.AssignSortedUnique(tombstones, graphs.size());
  ++mutation_epoch;
  return id;
}

bool GraphDatabase::RemoveGraph(GraphId id) {
  if (id >= graphs.size()) return false;
  const auto it = std::lower_bound(tombstones.begin(), tombstones.end(), id);
  if (it != tombstones.end() && *it == id) return false;  // already removed
  tombstones.insert(it, id);
  tombstone_set.AssignSortedUnique(tombstones, graphs.size());
  ++mutation_epoch;
  return true;
}

}  // namespace igq
