#include "methods/feature_count_index.h"

#include <algorithm>
#include <map>

#include "isomorphism/vf2.h"

namespace igq {

void FeatureCountIndex::AddGraph(GraphId id, const Graph& graph) {
  // Ordered map so trie postings are appended deterministically.
  std::map<PathKey, uint32_t> features;
  EnumeratePaths(graph, options_,
                 [&features](PathKey key, VertexId) { ++features[key]; });
  for (const auto& [key, count] : features) {
    trie_.Add(key, id, count);
  }
  nf_[id] = static_cast<uint32_t>(features.size());
  // A graph with no features (zero vertices) is vacuously a subgraph of any
  // query; track it explicitly since the trie will never surface it.
  if (features.empty()) empty_graphs_.push_back(id);
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const Graph& query) const {
  return FindPotentialSubgraphsOf(CountPathFeatures(query, options_));
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const PathFeatureCounts& query_features) const {
  // Algorithm 2: count, per indexed graph gi, how many of the query's
  // features f satisfy occurrences(f, gi) <= occurrences(f, query); gi is a
  // candidate iff that tally equals NF[gi] (all of gi's features are covered
  // by the query with sufficient multiplicity).
  std::unordered_map<GraphId, uint32_t> matched;
  for (const auto& [key, query_count] : query_features) {
    const std::vector<PathPosting>* postings = trie_.Find(key);
    if (postings == nullptr) continue;
    for (const PathPosting& posting : *postings) {
      if (posting.count <= query_count) ++matched[posting.graph_id];
    }
  }
  std::vector<GraphId> candidates = empty_graphs_;
  for (const auto& [id, count] : matched) {
    if (count == nf_.at(id)) candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

size_t FeatureCountIndex::MemoryBytes() const {
  return trie_.MemoryBytes() +
         nf_.size() * (sizeof(GraphId) + sizeof(uint32_t) + 16);
}

void FeatureCountSupergraphMethod::Build(const GraphDatabase& db) {
  db_ = &db;
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    index_.AddGraph(id, db.graphs[id]);
  }
}

bool FeatureCountSupergraphMethod::Verify(const PreparedQuery& prepared,
                                          GraphId id) const {
  return Vf2Matcher::FindEmbedding(db_->graphs[id], prepared.query())
      .has_value();
}

}  // namespace igq
