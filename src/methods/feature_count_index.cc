#include "methods/feature_count_index.h"

#include <algorithm>
#include <map>

#include "isomorphism/match_core.h"
#include "snapshot/serializer.h"

namespace igq {
namespace {

/// Payload version of the serialized method indexes in this file.
constexpr uint32_t kFeatureCountIndexVersion = 1;

}  // namespace

void FeatureCountIndex::AddGraph(GraphId id, const Graph& graph) {
  // Ordered map so trie postings are appended deterministically.
  std::map<PathKey, uint32_t> features;
  EnumeratePaths(graph, options_,
                 [&features](PathKey key, VertexId) { ++features[key]; });
  for (const auto& [key, count] : features) {
    trie_.Add(key, id, count);
  }
  nf_[id] = static_cast<uint32_t>(features.size());
  // A graph with no features (zero vertices) is vacuously a subgraph of any
  // query; track it explicitly since the trie will never surface it.
  if (features.empty()) empty_graphs_.push_back(id);
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const Graph& query) const {
  return FindPotentialSubgraphsOf(CountPathFeatures(query, options_));
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const PathFeatureCounts& query_features) const {
  // Algorithm 2: count, per indexed graph gi, how many of the query's
  // features f satisfy occurrences(f, gi) <= occurrences(f, query); gi is a
  // candidate iff that tally equals NF[gi] (all of gi's features are covered
  // by the query with sufficient multiplicity).
  std::unordered_map<GraphId, uint32_t> matched;
  for (const auto& [key, query_count] : query_features) {
    const std::vector<PathPosting>* postings = trie_.Find(key);
    if (postings == nullptr) continue;
    for (const PathPosting& posting : *postings) {
      if (posting.count <= query_count) ++matched[posting.graph_id];
    }
  }
  std::vector<GraphId> candidates = empty_graphs_;
  for (const auto& [id, count] : matched) {
    // find() rather than at(): a posting id missing from the NF table
    // (possible only in an externally produced index payload) must mean
    // "not a candidate", never a crash.
    const auto it = nf_.find(id);
    if (it != nf_.end() && count == it->second) candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

size_t FeatureCountIndex::MemoryBytes() const {
  return trie_.MemoryBytes() +
         nf_.size() * (sizeof(GraphId) + sizeof(uint32_t) + 16);
}

void FeatureCountIndex::Save(snapshot::BinaryWriter& writer) const {
  writer.WriteU32(static_cast<uint32_t>(options_.max_edges));
  writer.WriteU8(options_.include_single_vertices ? 1 : 0);
  trie_.Save(writer);
  // NF table in ascending graph-id order for a deterministic encoding.
  std::vector<std::pair<GraphId, uint32_t>> nf(nf_.begin(), nf_.end());
  std::sort(nf.begin(), nf.end());
  writer.WriteU64(nf.size());
  for (const auto& [id, count] : nf) {
    writer.WriteU32(id);
    writer.WriteU32(count);
  }
  writer.WriteU64(empty_graphs_.size());
  for (GraphId id : empty_graphs_) writer.WriteU32(id);
}

bool FeatureCountIndex::Load(snapshot::BinaryReader& reader,
                             uint32_t num_graphs) {
  uint32_t max_edges = 0;
  uint8_t include_single = 0;
  if (!reader.ReadU32(&max_edges) || !reader.ReadU8(&include_single)) {
    return false;
  }
  if (max_edges != options_.max_edges ||
      (include_single != 0) != options_.include_single_vertices) {
    return false;  // features would not line up with this configuration
  }
  PathTrie trie(/*store_locations=*/false);
  if (!trie.Load(reader, num_graphs)) return false;
  if (trie.store_locations()) return false;  // this index never stores them
  uint64_t nf_count = 0;
  if (!reader.ReadU64(&nf_count) || nf_count > num_graphs) return false;
  std::unordered_map<GraphId, uint32_t> nf;
  nf.reserve(static_cast<size_t>(nf_count));
  for (uint64_t i = 0; i < nf_count; ++i) {
    uint32_t id = 0, count = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU32(&count)) return false;
    if (id >= num_graphs || !nf.emplace(id, count).second) return false;
  }
  uint64_t empty_count = 0;
  if (!reader.ReadU64(&empty_count) || empty_count > num_graphs) return false;
  std::vector<GraphId> empty_graphs;
  empty_graphs.reserve(static_cast<size_t>(empty_count));
  for (uint64_t i = 0; i < empty_count; ++i) {
    uint32_t id = 0;
    if (!reader.ReadU32(&id)) return false;
    if (id >= num_graphs) return false;
    if (i > 0 && id <= empty_graphs.back()) {
      return false;  // strictly ascending: no duplicate candidates
    }
    empty_graphs.push_back(id);
  }
  trie_ = std::move(trie);
  nf_ = std::move(nf);
  empty_graphs_ = std::move(empty_graphs);
  return true;
}

void FeatureCountSupergraphMethod::Build(const GraphDatabase& db) {
  db_ = &db;
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    index_.AddGraph(id, db.graphs[id]);
  }
  pattern_plans_.resize(db.graphs.size());
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    pattern_plans_[id].Compile(db.graphs[id]);
  }
}

bool FeatureCountSupergraphMethod::Verify(const PreparedQuery& prepared,
                                          GraphId id) const {
  // Supergraph direction: the stored graph is the pattern, the query the
  // target. Both halves are precompiled — the stored graph's plan at
  // Build() time, the query's CSR view once in Prepare().
  return PlanContains(pattern_plans_[id], prepared.query_view(),
                      MatchContext::ThreadLocal());
}

bool FeatureCountSupergraphMethod::SaveIndex(std::ostream& out) const {
  if (db_ == nullptr) return false;  // never built
  snapshot::BinaryWriter writer(out);
  writer.WriteU32(kFeatureCountIndexVersion);
  index_.Save(writer);
  return writer.ok();
}

bool FeatureCountSupergraphMethod::LoadIndex(const GraphDatabase& db,
                                             std::istream& in) {
  snapshot::BinaryReader reader(in);
  uint32_t version = 0;
  if (!reader.ReadU32(&version) || version != kFeatureCountIndexVersion) {
    return false;
  }
  if (!index_.Load(reader, static_cast<uint32_t>(db.graphs.size()))) {
    return false;
  }
  db_ = &db;
  // Derived data, never serialized: recompile the per-graph search plans.
  pattern_plans_.resize(db.graphs.size());
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    pattern_plans_[id].Compile(db.graphs[id]);
  }
  return true;
}

}  // namespace igq
