#include "methods/feature_count_index.h"

#include <algorithm>
#include <map>

#include "isomorphism/match_core.h"
#include "serving/budget.h"
#include "snapshot/serializer.h"

namespace igq {
namespace {

/// Payload version of the serialized method indexes in this file.
constexpr uint32_t kFeatureCountIndexVersion = 1;

}  // namespace

void FeatureCountIndex::AddGraph(GraphId id, const Graph& graph) {
  // Ordered map so trie postings are appended deterministically.
  std::map<PathKey, uint32_t> features;
  EnumeratePaths(graph, options_,
                 [&features](PathKey key, VertexId) { ++features[key]; });
  for (const auto& [key, count] : features) {
    trie_.Add(key, id, count);
  }
  if (nf_.size() <= id) nf_.resize(static_cast<size_t>(id) + 1, kNotIndexed);
  // NF 0 (a zero-vertex graph) is meaningful: the tally scan below surfaces
  // it as a candidate of every query, which is the vacuous-containment rule.
  nf_[id] = static_cast<uint32_t>(features.size());
  ++num_indexed_;
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const Graph& query) const {
  return FindPotentialSubgraphsOf(CountPathFeatures(query, options_));
}

std::vector<GraphId> FeatureCountIndex::FindPotentialSubgraphsOf(
    const PathFeatureCounts& query_features) const {
  std::vector<GraphId> candidates;
  FindPotentialSubgraphsOf(query_features, &candidates);
  return candidates;
}

void FeatureCountIndex::FindPotentialSubgraphsOf(
    const PathFeatureCounts& query_features, std::vector<GraphId>* out) const {
  // Algorithm 2: count, per indexed graph gi, how many of the query's
  // features f satisfy occurrences(f, gi) <= occurrences(f, query); gi is a
  // candidate iff that tally equals NF[gi] (all of gi's features are covered
  // by the query with sufficient multiplicity). The tally is a dense
  // scratch array indexed by graph id — one zero-fill plus one posting
  // pass, no hashing — and the final scan walks ids ascending, so the
  // candidate list needs no sort. kNotIndexed can never equal a tally.
  out->clear();
  if (nf_.empty()) return;
  std::vector<uint32_t>& tally = IdSetScratch::ThreadLocal().Tally(nf_.size());
  for (const auto& [key, query_count] : query_features) {
    const std::vector<PathPosting>* postings = trie_.Find(key);
    if (postings == nullptr) continue;
    for (const PathPosting& posting : *postings) {
      if (posting.count <= query_count) ++tally[posting.graph_id];
    }
  }
  for (size_t id = 0; id < nf_.size(); ++id) {
    if (tally[id] == nf_[id]) out->push_back(static_cast<GraphId>(id));
  }
}

size_t FeatureCountIndex::MemoryBytes() const {
  return trie_.MemoryBytes() + nf_.capacity() * sizeof(uint32_t);
}

void FeatureCountIndex::Save(snapshot::BinaryWriter& writer) const {
  writer.WriteU32(static_cast<uint32_t>(options_.max_edges));
  writer.WriteU8(options_.include_single_vertices ? 1 : 0);
  trie_.Save(writer);
  // NF table in ascending graph-id order (the dense table already is), then
  // the zero-feature list — both byte-identical to the pre-IdSet encoding,
  // which stored the empty-graph list explicitly (docs/FORMATS.md).
  writer.WriteU64(num_indexed_);
  for (size_t id = 0; id < nf_.size(); ++id) {
    if (nf_[id] == kNotIndexed) continue;
    writer.WriteU32(static_cast<uint32_t>(id));
    writer.WriteU32(nf_[id]);
  }
  uint64_t empty_count = 0;
  for (uint32_t count : nf_) empty_count += count == 0 ? 1 : 0;
  writer.WriteU64(empty_count);
  for (size_t id = 0; id < nf_.size(); ++id) {
    if (nf_[id] == 0) writer.WriteU32(static_cast<uint32_t>(id));
  }
}

bool FeatureCountIndex::Load(snapshot::BinaryReader& reader,
                             uint32_t num_graphs) {
  uint32_t max_edges = 0;
  uint8_t include_single = 0;
  if (!reader.ReadU32(&max_edges) || !reader.ReadU8(&include_single)) {
    return false;
  }
  if (max_edges != options_.max_edges ||
      (include_single != 0) != options_.include_single_vertices) {
    return false;  // features would not line up with this configuration
  }
  PathTrie trie(/*store_locations=*/false);
  if (!trie.Load(reader, num_graphs)) return false;
  if (trie.store_locations()) return false;  // this index never stores them
  uint64_t nf_count = 0;
  if (!reader.ReadU64(&nf_count) || nf_count > num_graphs) return false;
  std::vector<uint32_t> nf(num_graphs, kNotIndexed);
  uint64_t zero_feature_graphs = 0;
  for (uint64_t i = 0; i < nf_count; ++i) {
    uint32_t id = 0, count = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU32(&count)) return false;
    if (id >= num_graphs || count == kNotIndexed) return false;
    if (nf[id] != kNotIndexed) return false;  // duplicate NF entry
    nf[id] = count;
    zero_feature_graphs += count == 0 ? 1 : 0;
  }
  // The zero-feature list is redundant next to the NF table (it is exactly
  // the NF == 0 ids); it stays in the format for compatibility and must be
  // consistent — a payload where the two disagree is malformed.
  uint64_t empty_count = 0;
  if (!reader.ReadU64(&empty_count) || empty_count != zero_feature_graphs) {
    return false;
  }
  uint32_t previous_empty = 0;
  for (uint64_t i = 0; i < empty_count; ++i) {
    uint32_t id = 0;
    if (!reader.ReadU32(&id)) return false;
    if (id >= num_graphs || nf[id] != 0) return false;
    if (i > 0 && id <= previous_empty) {
      return false;  // strictly ascending: no duplicate candidates
    }
    previous_empty = id;
  }
  trie_ = std::move(trie);
  nf_ = std::move(nf);
  num_indexed_ = static_cast<size_t>(nf_count);
  return true;
}

void FeatureCountSupergraphMethod::Build(const GraphDatabase& db) {
  db_ = &db;
  // Build may run again over a mutated database (the engines' rebuild
  // fallback); start from an empty index, never accumulate.
  index_ = FeatureCountIndex(index_.options());
  pattern_plans_.clear();
  // Tombstoned graphs are skipped outright: their NF rows stay kNotIndexed
  // (a tally can never reach that value, so they can never filter through)
  // and their pattern plans stay default-constructed (never probed — a
  // non-candidate is never verified). The incremental path reaches the same
  // candidate sets by subtracting the tombstone set in Filter() instead.
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    if (!db.IsLive(id)) continue;
    index_.AddGraph(id, db.graphs[id]);
  }
  pattern_plans_.resize(db.graphs.size());
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    if (!db.IsLive(id)) continue;
    pattern_plans_[id].Compile(db.graphs[id]);
  }
}

std::vector<GraphId> FeatureCountSupergraphMethod::Filter(
    const PreparedQuery& prepared) const {
  const auto& pq = static_cast<const PathPreparedQuery&>(prepared);
  // Budget checkpoint at the filter boundary. The tally scan itself is
  // shared with the zero-allocation Isuper probe path, so the poll stays
  // outside it; the scan is two bounded posting passes, not a search.
  serving::QueryControl* control = prepared.control();
  if (control != nullptr && control->CheckNow()) return {};
  std::vector<GraphId> candidates =
      index_.FindPotentialSubgraphsOf(pq.features());
  if (db_ == nullptr || db_->tombstones.empty() || candidates.empty()) {
    return candidates;
  }
  // Removed graphs keep their NF rows until the next full Build; compose
  // with the database's tombstone IdSet so they never surface.
  std::vector<GraphId> live;
  live.reserve(candidates.size());
  db_->tombstone_set.Partition(candidates, /*kept=*/nullptr, &live);
  return live;
}

bool FeatureCountSupergraphMethod::Verify(const PreparedQuery& prepared,
                                          GraphId id) const {
  // Supergraph direction: the stored graph is the pattern, the query the
  // target. Both halves are precompiled — the stored graph's plan at
  // Build() time, the query's CSR view once in Prepare().
  return PlanContains(pattern_plans_[id], prepared.query_view(),
                      MatchContext::ThreadLocal());
}

bool FeatureCountSupergraphMethod::SaveIndex(std::ostream& out) const {
  if (db_ == nullptr) return false;  // never built
  snapshot::BinaryWriter writer(out);
  writer.WriteU32(kFeatureCountIndexVersion);
  index_.Save(writer);
  return writer.ok();
}

bool FeatureCountSupergraphMethod::OnAddGraph(const GraphDatabase& db,
                                              GraphId id) {
  if (db_ != &db) return false;  // built over a different database
  if (static_cast<size_t>(id) + 1 != db.graphs.size() ||
      pattern_plans_.size() != static_cast<size_t>(id)) {
    return false;  // ids must extend the index contiguously
  }
  // `id` is the maximum id ever indexed, so FeatureCountIndex's
  // increasing-id contract holds by construction.
  index_.AddGraph(id, db.graphs[id]);
  pattern_plans_.emplace_back().Compile(db.graphs[id]);
  return true;
}

bool FeatureCountSupergraphMethod::OnRemoveGraph(const GraphDatabase& db,
                                                 GraphId) {
  // Nothing to unindex: the dead graph's NF row stays behind and Filter()
  // subtracts the database's tombstone set.
  return db_ == &db;
}

bool FeatureCountSupergraphMethod::LoadIndex(const GraphDatabase& db,
                                             std::istream& in) {
  snapshot::BinaryReader reader(in);
  uint32_t version = 0;
  if (!reader.ReadU32(&version) || version != kFeatureCountIndexVersion) {
    return false;
  }
  if (!index_.Load(reader, static_cast<uint32_t>(db.graphs.size()))) {
    return false;
  }
  db_ = &db;
  // Derived data, never serialized: recompile the per-graph search plans.
  pattern_plans_.resize(db.graphs.size());
  for (GraphId id = 0; id < db.graphs.size(); ++id) {
    pattern_plans_[id].Compile(db.graphs[id]);
  }
  return true;
}

}  // namespace igq
