// Name-based factory for the host methods, used by the benchmark harnesses
// ("ggsx", "grapes", "grapes6", "ctindex").
#ifndef IGQ_METHODS_REGISTRY_H_
#define IGQ_METHODS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "methods/method.h"

namespace igq {

/// Creates a subgraph method by name; returns nullptr for unknown names.
/// Known names: "ggsx", "grapes", "grapes6", "ctindex".
std::unique_ptr<SubgraphMethod> CreateSubgraphMethod(const std::string& name);

/// All known method names, in the order the paper's figures list them.
std::vector<std::string> KnownSubgraphMethods();

/// Verification-thread count the paper's configuration implies for `name`
/// (6 for "grapes6", otherwise 1).
size_t MethodVerifyThreads(const std::string& name);

}  // namespace igq

#endif  // IGQ_METHODS_REGISTRY_H_
