// Name-based factory for the host methods in both query directions, used by
// the benchmark harnesses, the examples and the tool.
//
//   subgraph   : "ggsx", "grapes", "grapes6", "ctindex"
//   supergraph : "featurecount"
//
// The registry is stateless; all members are safe to call from any thread.
#ifndef IGQ_METHODS_REGISTRY_H_
#define IGQ_METHODS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "methods/method.h"

namespace igq {

/// Per-method engine defaults implied by the paper's configuration (e.g.
/// Grapes(6) verifies with 6 threads).
struct MethodDefaults {
  size_t verify_threads = 1;
};

/// The two-direction method factory.
class MethodRegistry {
 public:
  /// Creates a method by direction and name; nullptr for unknown names or a
  /// name registered under the other direction.
  static std::unique_ptr<Method> Create(QueryDirection direction,
                                        const std::string& name);

  /// All known method names for `direction`, in the order the paper's
  /// figures list them.
  static std::vector<std::string> Known(QueryDirection direction);

  /// Engine defaults for `name` (defaults for unknown names).
  static MethodDefaults Defaults(QueryDirection direction,
                                 const std::string& name);
};

}  // namespace igq

#endif  // IGQ_METHODS_REGISTRY_H_
