// Trie over path-feature label sequences with per-graph postings — the index
// structure of GraphGrepSX ("suffix tree" of paths), Grapes (paths +
// location info) and iGQ's Isuper (Algorithm 1: features with occurrence
// counts).
#ifndef IGQ_METHODS_PATH_TRIE_H_
#define IGQ_METHODS_PATH_TRIE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "features/feature_set.h"
#include "graph/graph.h"

namespace igq {
namespace snapshot {
class BinaryReader;
class BinaryWriter;
}  // namespace snapshot

/// Posting for one (feature, graph) pair.
struct PathPosting {
  uint32_t graph_id = 0;
  /// Number of directed instances of the feature in the graph.
  uint32_t count = 0;
  /// Start vertices of the instances (only if the trie stores locations).
  std::vector<VertexId> locations;
};

/// Label trie; each node corresponds to a canonical path prefix and holds
/// the postings of the feature ending there.
class PathTrie {
 public:
  /// `store_locations` enables Grapes-style location info.
  explicit PathTrie(bool store_locations = false)
      : store_locations_(store_locations) {
    nodes_.emplace_back();
  }

  /// Adds `count` instances of feature `key` for `graph_id`, with optional
  /// instance start `locations` (ignored unless location storage is on).
  /// Postings for a given key must be added in nondecreasing graph_id order.
  void Add(PathKey key, uint32_t graph_id, uint32_t count,
           const std::vector<VertexId>* locations = nullptr);

  /// Postings of `key`, or nullptr if the feature is absent.
  const std::vector<PathPosting>* Find(PathKey key) const;

  /// Number of distinct features stored.
  size_t NumFeatures() const { return num_features_; }

  size_t NumNodes() const { return nodes_.size(); }

  /// Estimated heap footprint (Fig. 18).
  size_t MemoryBytes() const;

  bool store_locations() const { return store_locations_; }

  /// Serializes the trie node-by-node (children + postings verbatim), so a
  /// warm start deserializes the exact structure instead of re-enumerating
  /// features from the graphs.
  void Save(snapshot::BinaryWriter& writer) const;

  /// Restores a trie saved by Save(), replacing this object's contents
  /// (including the store_locations flag). `num_graphs` bounds the posting
  /// graph ids; when `graphs` is non-empty (the indexed dataset, size
  /// num_graphs), stored locations are additionally bounds-checked against
  /// each graph's vertex count — callers that consume locations (Grapes
  /// verification) must pass it. Any out-of-range id, child index, or
  /// location, or non-ascending ordering, makes it return false, in which
  /// case the trie is left unchanged.
  bool Load(snapshot::BinaryReader& reader, uint32_t num_graphs,
            std::span<const Graph> graphs = {});

 private:
  struct Node {
    // Sorted (label, child node index) pairs.
    std::vector<std::pair<Label, uint32_t>> children;
    std::vector<PathPosting> postings;
  };

  uint32_t DescendOrCreate(PathKey key);
  int64_t DescendConst(PathKey key) const;

  bool store_locations_;
  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace igq

#endif  // IGQ_METHODS_PATH_TRIE_H_
