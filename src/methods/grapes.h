// Grapes (Giugno et al., PLoS One 2013): parallel path indexing with
// location info; verification restricted to the connected components of the
// candidate graph that are covered by query-feature occurrences. The paper
// evaluates Grapes with 1 and 6 threads (Grapes / Grapes(6)).
#ifndef IGQ_METHODS_GRAPES_H_
#define IGQ_METHODS_GRAPES_H_

#include <string>

#include "methods/path_method_base.h"

namespace igq {

/// Grapes subgraph-query method.
class GrapesMethod : public PathMethodBase {
 public:
  /// `threads` is used for index construction (and advertised to the engine
  /// for parallel verification, matching the original's behaviour).
  explicit GrapesMethod(size_t threads = 1, size_t max_path_edges = 4)
      : PathMethodBase({.max_path_edges = max_path_edges,
                        .build_threads = threads,
                        .store_locations = true}),
        threads_(threads) {}

  std::string Name() const override {
    return threads_ > 1 ? "Grapes(" + std::to_string(threads_) + ")" : "Grapes";
  }

  /// Location-aware verification: builds the set of vertices of graph `id`
  /// covered by occurrences of the query's features, splits it into
  /// connected components, and runs component-restricted VF2.
  bool Verify(const PreparedQuery& prepared, GraphId id) const override;

  /// Number of worker threads the method was configured with; the query
  /// engine uses this to size its verification pool.
  size_t threads() const { return threads_; }

 private:
  size_t threads_;
};

}  // namespace igq

#endif  // IGQ_METHODS_GRAPES_H_
