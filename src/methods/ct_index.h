// CT-Index (Klein, Kriege, Mutzel, ICDE 2011): per-graph hash fingerprints
// over canonical tree (size <= 6) and cycle (size <= 8) features; filtering
// is a bitwise subset test; verification uses VF2. The paper's Fig. 18 also
// evaluates a larger configuration (trees <= 7, cycles <= 9, 8192 bits),
// which this implementation exposes through Options.
#ifndef IGQ_METHODS_CT_INDEX_H_
#define IGQ_METHODS_CT_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "features/cycle_enumerator.h"
#include "features/fingerprint.h"
#include "features/tree_enumerator.h"
#include "graph/csr_view.h"
#include "methods/method.h"

namespace igq {

/// CT-Index subgraph-query method.
class CtIndexMethod : public Method {
 public:
  struct Options {
    size_t max_tree_vertices = 6;
    size_t max_cycle_vertices = 8;
    size_t fingerprint_bits = 4096;
    /// Per-graph feature-instance budget; saturated graphs get an all-ones
    /// fingerprint (never filtered out — conservative and correct).
    size_t max_instances_per_graph = 200'000;
  };

  CtIndexMethod() : options_() {}
  explicit CtIndexMethod(const Options& options) : options_(options) {}

  std::string Name() const override { return "CT-Index"; }

  QueryDirection Direction() const override {
    return QueryDirection::kSubgraph;
  }

  void Build(const GraphDatabase& db) override;

  std::unique_ptr<PreparedQuery> Prepare(const Graph& query) const override;

  std::vector<GraphId> Filter(const PreparedQuery& prepared) const override;

  bool Verify(const PreparedQuery& prepared, GraphId id) const override;

  size_t IndexMemoryBytes() const override;

  /// Builds the fingerprint of a single graph under these options.
  Fingerprint FingerprintOf(const Graph& graph) const;

 private:
  Options options_;
  const GraphDatabase* db_ = nullptr;
  std::vector<Fingerprint> fingerprints_;
  CsrViewStore target_views_;  // verification substrate, built with db
};

}  // namespace igq

#endif  // IGQ_METHODS_CT_INDEX_H_
