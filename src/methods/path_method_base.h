// Shared machinery for the two path-based host methods (GGSX, Grapes):
// exhaustive path enumeration into a trie at build time, and the counting
// filter (graph is a candidate iff it contains every query path feature at
// least as often as the query does).
#ifndef IGQ_METHODS_PATH_METHOD_BASE_H_
#define IGQ_METHODS_PATH_METHOD_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "features/feature_set.h"
#include "features/path_enumerator.h"
#include "graph/csr_view.h"
#include "methods/method.h"
#include "methods/path_trie.h"

namespace igq {

/// PreparedQuery carrying the query's path-feature multiset.
class PathPreparedQuery : public PreparedQuery {
 public:
  PathPreparedQuery(const Graph& query, PathFeatureCounts features)
      : PreparedQuery(query), features_(std::move(features)) {}

  const PathFeatureCounts& features() const { return features_; }

 private:
  PathFeatureCounts features_;
};

/// Common base: builds the path trie (optionally multi-threaded, optionally
/// with location info) and implements Prepare/Filter for subgraph queries.
/// Subclasses provide the verification strategy.
class PathMethodBase : public Method {
 public:
  struct Options {
    /// Maximum indexed path length in edges (paper configuration: 4).
    size_t max_path_edges = 4;
    /// Worker threads for index construction (Grapes(6) uses 6).
    size_t build_threads = 1;
    /// Whether the trie stores instance start locations (Grapes: yes).
    bool store_locations = false;
  };

  explicit PathMethodBase(const Options& options)
      : options_(options), trie_(options.store_locations) {}

  QueryDirection Direction() const override {
    return QueryDirection::kSubgraph;
  }

  void Build(const GraphDatabase& db) override;

  std::unique_ptr<PreparedQuery> Prepare(const Graph& query) const override;

  std::vector<GraphId> Filter(const PreparedQuery& prepared) const override;

  size_t IndexMemoryBytes() const override { return trie_.MemoryBytes(); }

  /// Index persistence (see Method): the trie is serialized node-by-node,
  /// so restoring skips path enumeration entirely. LoadIndex() fails if the
  /// payload's path length or location-storage configuration differs from
  /// this method's options.
  bool SaveIndex(std::ostream& out) const override;
  bool LoadIndex(const GraphDatabase& db, std::istream& in) override;

  /// Incremental maintenance (see Method). OnAddGraph enumerates only the
  /// new graph's paths into the trie — the new id is the maximum, so the
  /// postings' nondecreasing-id invariant holds by construction — and
  /// appends its CSR view. OnRemoveGraph leaves the trie untouched: the
  /// dead graph's postings stay behind as garbage that Filter() subtracts
  /// through the database's tombstone IdSet, the same candidates a fresh
  /// Build (which skips tombstoned graphs outright) would produce.
  bool OnAddGraph(const GraphDatabase& db, GraphId id) override;
  bool OnRemoveGraph(const GraphDatabase& db, GraphId id) override;

  const PathTrie& trie() const { return trie_; }

 protected:
  const GraphDatabase* db() const { return db_; }
  /// Precomputed CSR view of dataset graph `id` — built once per
  /// Build()/LoadIndex() and shared by every Verify() call (see
  /// docs/PERFORMANCE.md).
  const CsrGraphView& target_view(GraphId id) const {
    return target_views_.view(id);
  }
  PathEnumeratorOptions EnumeratorOptions() const {
    PathEnumeratorOptions opts;
    opts.max_edges = options_.max_path_edges;
    opts.include_single_vertices = true;
    return opts;
  }

  Options options_;

 private:
  const GraphDatabase* db_ = nullptr;
  PathTrie trie_;
  CsrViewStore target_views_;
};

}  // namespace igq

#endif  // IGQ_METHODS_PATH_METHOD_BASE_H_
