#include "isomorphism/cost_model.h"

#include <cmath>

namespace igq {

LogValue IsomorphismCost(size_t num_labels, size_t pattern_nodes,
                         size_t target_nodes) {
  if (pattern_nodes > target_nodes || target_nodes == 0) {
    return LogValue::Zero();
  }
  const double ni = static_cast<double>(target_nodes);
  const double n = static_cast<double>(pattern_nodes);
  const double labels = num_labels < 1 ? 1.0 : static_cast<double>(num_labels);
  // log c = log Ni + log(Ni!) - log((Ni-n)!) - (n+1) log L
  const double log_cost = std::log(ni) + std::lgamma(ni + 1.0) -
                          std::lgamma(ni - n + 1.0) -
                          (n + 1.0) * std::log(labels);
  return LogValue::FromLog(log_cost);
}

}  // namespace igq
