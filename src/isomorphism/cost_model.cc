#include "isomorphism/cost_model.h"

#include <cmath>

namespace igq {
namespace {

// std::lgamma writes the process-global `signgam` on glibc, which is a data
// race when concurrent query streams evaluate §5.1 costs (ThreadSanitizer
// flags it). Use the POSIX reentrant variant where available; the argument
// is always positive here, so the sign output is irrelevant.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

LogValue IsomorphismCost(size_t num_labels, size_t pattern_nodes,
                         size_t target_nodes) {
  if (pattern_nodes > target_nodes || target_nodes == 0) {
    return LogValue::Zero();
  }
  const double ni = static_cast<double>(target_nodes);
  const double n = static_cast<double>(pattern_nodes);
  const double labels = num_labels < 1 ? 1.0 : static_cast<double>(num_labels);
  // log c = log Ni + log(Ni!) - log((Ni-n)!) - (n+1) log L
  const double log_cost = std::log(ni) + LogGamma(ni + 1.0) -
                          LogGamma(ni - n + 1.0) -
                          (n + 1.0) * std::log(labels);
  return LogValue::FromLog(log_cost);
}

}  // namespace igq
