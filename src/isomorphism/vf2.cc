#include "isomorphism/vf2.h"

namespace igq {

bool Vf2Matcher::Contains(const Graph& pattern, const Graph& target,
                          MatchStats* stats) const {
  if (pattern.NumVertices() == 0) return true;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  MatchContext& ctx = MatchContext::ThreadLocal();
  MatchPlan& plan = ctx.scratch_plan();
  plan.Compile(pattern);
  if (stats != nullptr) ++stats->plan_compiles;
  // Boolean path: no embedding is materialized, so nothing allocates.
  return PlanContains(plan, GraphRef(target), ctx, stats);
}

std::optional<std::vector<VertexId>> Vf2Matcher::FindEmbedding(
    const Graph& pattern, const Graph& target, MatchStats* stats) {
  return FindEmbeddingRestricted(pattern, target, nullptr, stats);
}

std::optional<std::vector<VertexId>> Vf2Matcher::FindEmbeddingRestricted(
    const Graph& pattern, const Graph& target,
    const std::vector<bool>* allowed, MatchStats* stats) {
  if (pattern.NumVertices() == 0) return std::vector<VertexId>{};
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return std::nullopt;
  }
  MatchContext& ctx = MatchContext::ThreadLocal();
  MatchPlan& plan = ctx.scratch_plan();
  plan.Compile(pattern);
  if (stats != nullptr) ++stats->plan_compiles;
  // One-shot pair: search the Graph directly (GraphRef) — a CSR build
  // would cost more than the typical first-match search it serves.
  const GraphRef ref(target);
  if (allowed != nullptr) {
    ScopedAllowed restriction(ctx, target.NumVertices());
    for (VertexId v = 0; v < target.NumVertices(); ++v) {
      if ((*allowed)[v]) restriction.Allow(v);
    }
    return PlanFindEmbedding(plan, ref, ctx, stats);
  }
  return PlanFindEmbedding(plan, ref, ctx, stats);
}

uint64_t Vf2Matcher::CountEmbeddings(const Graph& pattern, const Graph& target,
                                     uint64_t limit, MatchStats* stats) {
  if (pattern.NumVertices() == 0) return 1;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return 0;
  }
  MatchContext& ctx = MatchContext::ThreadLocal();
  MatchPlan& plan = ctx.scratch_plan();
  plan.Compile(pattern);
  if (stats != nullptr) ++stats->plan_compiles;
  return PlanCountEmbeddings(plan, GraphRef(target), ctx, limit, stats);
}

}  // namespace igq
