#include "isomorphism/vf2.h"

#include <algorithm>
#include <functional>

namespace igq {
namespace {

constexpr VertexId kUnmapped = UINT32_MAX;

thread_local uint64_t g_last_states = 0;

// Variable ordering: most-constrained-first BFS. Start from the pattern
// vertex with the rarest (label, degree) signature, then repeatedly pick the
// unordered vertex with the most already-ordered neighbors (ties: higher
// degree). Each ordered vertex remembers one ordered neighbor ("parent") so
// candidates can be generated from the parent's image neighborhood.
struct SearchPlan {
  std::vector<VertexId> order;
  // parent[depth]: pattern vertex (already ordered before `depth`) adjacent
  // to order[depth], or kUnmapped if order[depth] starts a new component.
  std::vector<VertexId> parent;
};

SearchPlan BuildPlan(const Graph& pattern) {
  const size_t n = pattern.NumVertices();
  SearchPlan plan;
  plan.order.reserve(n);
  plan.parent.assign(n, kUnmapped);
  std::vector<bool> placed(n, false);
  std::vector<uint32_t> placed_neighbors(n, 0);

  for (size_t placed_count = 0; placed_count < n; ++placed_count) {
    VertexId best = kUnmapped;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == kUnmapped ||
          placed_neighbors[v] > placed_neighbors[best] ||
          (placed_neighbors[v] == placed_neighbors[best] &&
           pattern.Degree(v) > pattern.Degree(best))) {
        best = v;
      }
    }
    placed[best] = true;
    // Parent: any neighbor already placed (used for candidate generation).
    for (VertexId w : pattern.Neighbors(best)) {
      if (placed[w] && w != best) {
        plan.parent[plan.order.size()] = w;
        break;
      }
    }
    plan.order.push_back(best);
    for (VertexId w : pattern.Neighbors(best)) ++placed_neighbors[w];
  }
  return plan;
}

class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target,
           const std::vector<bool>* allowed)
      : pattern_(pattern),
        target_(target),
        allowed_(allowed),
        plan_(BuildPlan(pattern)),
        pattern_map_(pattern.NumVertices(), kUnmapped),
        target_used_(target.NumVertices(), false) {}

  // Visits embeddings; `on_match` returns true to continue enumeration,
  // false to stop. Returns false iff enumeration was stopped early.
  bool Enumerate(const std::function<bool(const std::vector<VertexId>&)>& on_match) {
    g_last_states = 0;
    return Recurse(0, on_match);
  }

 private:
  bool Feasible(VertexId u, VertexId x) const {
    if (target_used_[x]) return false;
    if (allowed_ != nullptr && !(*allowed_)[x]) return false;
    if (pattern_.label(u) != target_.label(x)) return false;
    if (target_.Degree(x) < pattern_.Degree(u)) return false;
    // Every mapped pattern-neighbor of u must land on a target-neighbor of x.
    size_t unmapped_neighbors = 0;
    for (VertexId un : pattern_.Neighbors(u)) {
      const VertexId image = pattern_map_[un];
      if (image == kUnmapped) {
        ++unmapped_neighbors;
      } else if (!target_.HasEdge(x, image)) {
        return false;
      }
    }
    // Lookahead: u's unmapped neighbors must fit among x's free neighbors.
    size_t free_target_neighbors = 0;
    for (VertexId xn : target_.Neighbors(x)) {
      if (!target_used_[xn] && (allowed_ == nullptr || (*allowed_)[xn])) {
        ++free_target_neighbors;
      }
    }
    return free_target_neighbors >= unmapped_neighbors;
  }

  bool Recurse(size_t depth,
               const std::function<bool(const std::vector<VertexId>&)>& on_match) {
    ++g_last_states;
    if (depth == plan_.order.size()) return on_match(pattern_map_);
    const VertexId u = plan_.order[depth];
    const VertexId parent = plan_.parent[depth];

    if (parent != kUnmapped) {
      // Candidates: neighbors of the parent's image.
      for (VertexId x : target_.Neighbors(pattern_map_[parent])) {
        if (!Feasible(u, x)) continue;
        pattern_map_[u] = x;
        target_used_[x] = true;
        const bool keep_going = Recurse(depth + 1, on_match);
        target_used_[x] = false;
        pattern_map_[u] = kUnmapped;
        if (!keep_going) return false;
      }
    } else {
      for (VertexId x = 0; x < target_.NumVertices(); ++x) {
        if (!Feasible(u, x)) continue;
        pattern_map_[u] = x;
        target_used_[x] = true;
        const bool keep_going = Recurse(depth + 1, on_match);
        target_used_[x] = false;
        pattern_map_[u] = kUnmapped;
        if (!keep_going) return false;
      }
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const std::vector<bool>* allowed_;
  SearchPlan plan_;
  std::vector<VertexId> pattern_map_;
  std::vector<bool> target_used_;
};

}  // namespace

bool Vf2Matcher::Contains(const Graph& pattern, const Graph& target) const {
  return FindEmbedding(pattern, target).has_value();
}

std::optional<std::vector<VertexId>> Vf2Matcher::FindEmbedding(
    const Graph& pattern, const Graph& target) {
  return FindEmbeddingRestricted(pattern, target, nullptr);
}

std::optional<std::vector<VertexId>> Vf2Matcher::FindEmbeddingRestricted(
    const Graph& pattern, const Graph& target,
    const std::vector<bool>* allowed) {
  if (pattern.NumVertices() == 0) return std::vector<VertexId>{};
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return std::nullopt;
  }
  std::optional<std::vector<VertexId>> found;
  Vf2State state(pattern, target, allowed);
  state.Enumerate([&found](const std::vector<VertexId>& mapping) {
    found = mapping;
    return false;  // stop at the first embedding
  });
  return found;
}

uint64_t Vf2Matcher::CountEmbeddings(const Graph& pattern, const Graph& target,
                                     uint64_t limit) {
  if (pattern.NumVertices() == 0) return 1;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return 0;
  }
  uint64_t count = 0;
  Vf2State state(pattern, target, nullptr);
  state.Enumerate([&count, limit](const std::vector<VertexId>&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return count;
}

uint64_t Vf2Matcher::LastSearchStates() { return g_last_states; }

}  // namespace igq
