// The zero-allocation subgraph-isomorphism core.
//
// The classic matcher re-derived its variable ordering and re-allocated all
// search state for every (pattern, target) pair. This core splits that work
// into pieces with deliberately different lifetimes:
//
//   * MatchPlan — the per-QUERY compile step: variable order, parents, the
//     per-depth adjacency-check lists and degree/label signatures, plus a
//     CSR view of the pattern. Compiled once, reused across every candidate
//     target in a batch (and, for dataset/cached graphs, precompiled once
//     at index-build time and reused across all queries).
//   * a TargetView — how the search reads the target. Two models satisfy
//     the concept:
//       - CsrGraphView (graph/csr_view.h): flat adjacency, label buckets
//         for O(1) seed candidates, adaptive edge oracle. Worth building
//         when the view is REUSED — dataset graphs verified by every
//         query, cached graphs probed on every cache lookup.
//       - GraphRef (below): a free wrapper over Graph for one-shot pairs,
//         where even an O(n+m) view build would dwarf a short search.
//   * MatchContext — the per-THREAD scratch arena: the mapping, the used
//     set and the used-neighbor counters as uint32_t epoch stamps (no
//     vector<bool> clears), and reusable plan/view buffers. One context per
//     VerifyPool worker (via ThreadLocal()), reused across queries, so the
//     inner loop never touches the allocator.
//
// Enumeration takes a templated visitor instead of a std::function so the
// per-embedding callback inlines into the search.
//
// Thread-safety: MatchPlan and target views are immutable during a search
// and may be shared across threads; MatchContext is strictly single-thread.
#ifndef IGQ_ISOMORPHISM_MATCH_CORE_H_
#define IGQ_ISOMORPHISM_MATCH_CORE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/csr_view.h"
#include "graph/graph.h"

namespace igq {

namespace serving {
class QueryControl;
}  // namespace serving

/// Sentinel for "no vertex" in plans and mappings.
inline constexpr VertexId kNoVertex = UINT32_MAX;

/// How many recursion states the search explores between budget polls when
/// a serving::QueryControl is installed on the context. The poll reads the
/// cancel flag and the steady clock, so this amortizes both to ~1/1024 of a
/// state's cost; without an installed control the per-state overhead is one
/// counter increment and a predictable branch (pinned by the lifecycle
/// parity test and the bench_micro_core zero-allocation gate).
inline constexpr uint32_t kBudgetCheckInterval = 1024;

/// Explicit out-parameter for search metrics. Replaces the old thread_local
/// LastSearchStates() side-channel, which silently misattributed states when
/// VerifyPool workers interleaved queries on one thread.
struct MatchStats {
  /// Recursive search states entered (the paper's #iso-test cost proxy).
  uint64_t states = 0;
  /// Embeddings reported to the visitor.
  uint64_t embeddings = 0;
  /// MatchPlan::Compile invocations attributed to this search.
  uint64_t plan_compiles = 0;

  void Reset() { *this = MatchStats{}; }
  MatchStats& operator+=(const MatchStats& other) {
    states += other.states;
    embeddings += other.embeddings;
    plan_compiles += other.plan_compiles;
    return *this;
  }
};

/// Zero-cost TargetView over a Graph, for one-shot (pattern, target) pairs:
/// no CSR build, no label buckets (roots fall back to a label-checked
/// vertex scan, exactly the classic matcher's behavior), HasEdge by binary
/// search of the smaller sorted adjacency list.
class GraphRef {
 public:
  static constexpr bool kHasLabelIndex = false;

  explicit GraphRef(const Graph& g) : g_(&g) {}

  size_t NumVertices() const { return g_->NumVertices(); }
  size_t NumEdges() const { return g_->NumEdges(); }
  Label label(VertexId v) const { return g_->label(v); }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(g_->Degree(v));
  }
  std::span<const VertexId> Neighbors(VertexId v) const {
    const std::vector<VertexId>& adj = g_->Neighbors(v);
    return {adj.data(), adj.size()};
  }
  bool HasEdge(VertexId u, VertexId v) const { return g_->HasEdge(u, v); }

 private:
  const Graph* g_;
};

/// A compiled search plan for one pattern graph: the most-constrained-first
/// BFS variable order of the classic matcher, plus everything Feasible()
/// needs, precomputed per depth so the inner loop does no discovery work:
/// the label/degree signature, the parent whose image generates candidates,
/// and the exact list of already-mapped pattern neighbors to adjacency-check
/// (the old code rescanned all neighbors and skipped unmapped ones).
class MatchPlan {
 public:
  /// Compiles the plan for `pattern` in place, reusing buffer capacity.
  void Compile(const Graph& pattern);

  size_t num_vertices() const { return order_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool empty() const { return order_.empty(); }

  /// CSR view of the pattern (sorted-range oracle; the core only iterates
  /// pattern neighbors, it never probes pattern edges).
  const CsrGraphView& pattern() const { return pattern_; }

  VertexId vertex_at(size_t depth) const { return order_[depth]; }
  /// Pattern vertex mapped before `depth` and adjacent to vertex_at(depth),
  /// or kNoVertex when that vertex starts a new component.
  VertexId parent_of(size_t depth) const { return parent_[depth]; }
  Label label_at(size_t depth) const { return label_[depth]; }
  uint32_t degree_at(size_t depth) const { return degree_[depth]; }
  /// Number of pattern neighbors of vertex_at(depth) not yet mapped at
  /// `depth` — the lookahead requirement.
  uint32_t unmapped_neighbors_at(size_t depth) const {
    return degree_[depth] -
           (mapped_offsets_[depth + 1] - mapped_offsets_[depth]);
  }
  /// Pattern neighbors of vertex_at(depth) already mapped at `depth`; their
  /// images must all be target-adjacent to the candidate.
  std::span<const VertexId> mapped_neighbors_at(size_t depth) const {
    return {mapped_neighbors_.data() + mapped_offsets_[depth],
            mapped_neighbors_.data() + mapped_offsets_[depth + 1]};
  }

  /// Heap footprint (capacity-based; precompiled plan stores report this
  /// through the owning index's MemoryBytes).
  size_t MemoryBytes() const;

 private:
  CsrGraphView pattern_;
  size_t num_edges_ = 0;
  std::vector<VertexId> order_;
  std::vector<VertexId> parent_;
  std::vector<Label> label_;
  std::vector<uint32_t> degree_;
  std::vector<uint32_t> mapped_offsets_;   // per depth, into mapped_neighbors_
  std::vector<VertexId> mapped_neighbors_;
  std::vector<uint32_t> depth_of_;         // scratch: inverse of order_
};

/// Per-thread scratch arena for searches. Obtain via ThreadLocal() — each
/// VerifyPool worker is a persistent thread, so its context (and therefore
/// all search state, the scratch plan and the scratch target view) is
/// reused across queries and batches without reallocation.
class MatchContext {
 public:
  MatchContext() = default;
  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// The calling thread's context.
  static MatchContext& ThreadLocal();

  /// Reusable target-view buffer (for call sites that build one view and
  /// probe it with several patterns, e.g. the Isuper probe's query view).
  CsrGraphView& scratch_target() { return scratch_target_; }
  /// Reusable plan buffer (for call sites whose pattern varies per
  /// candidate while the target is fixed — the supergraph direction).
  MatchPlan& scratch_plan() { return scratch_plan_; }

  // --- Search-internal state below. Public for the templated enumerator
  // --- and the ScopedAllowed helper; not part of the stable API.

  /// Starts a new search: advances the used-set epoch (O(1) instead of
  /// clearing), sizes the arrays, and finalizes a pending allowed set.
  template <typename TargetView>
  void BeginSearch(size_t pattern_size, const TargetView& target) {
    const size_t n = target.NumVertices();
    if (++epoch_ == 0) {
      std::fill(used_epoch_.begin(), used_epoch_.end(), 0);
      std::fill(used_neighbor_epoch_.begin(), used_neighbor_epoch_.end(), 0);
      epoch_ = 1;
    }
    if (used_epoch_.size() < n) {
      used_epoch_.resize(n, 0);
      used_neighbor_epoch_.resize(n, 0);
      used_neighbor_count_.resize(n, 0);
    }
    mapping_.assign(pattern_size, kNoVertex);

    // Finalize a pending allowed set: compute, for every allowed vertex,
    // how many of its neighbors are allowed. Used vertices are always
    // allowed, so AllowedDegree(x) - UsedNeighborCount(x) is the
    // free-allowed-neighbor count the lookahead rule needs.
    if (allowed_active_ && allowed_dirty_) {
      if (allowed_degree_.size() < n) allowed_degree_.resize(n, 0);
      for (VertexId v : allowed_list_) {
        uint32_t degree = 0;
        for (VertexId w : target.Neighbors(v)) degree += IsAllowed(w) ? 1 : 0;
        allowed_degree_[v] = degree;
      }
      allowed_dirty_ = false;
    }
  }

  bool IsUsed(VertexId x) const { return used_epoch_[x] == epoch_; }
  template <typename TargetView>
  void MarkUsed(const TargetView& target, VertexId x) {
    used_epoch_[x] = epoch_;
    for (VertexId xn : target.Neighbors(x)) BumpUsedNeighbors(xn, +1);
  }
  template <typename TargetView>
  void UnmarkUsed(const TargetView& target, VertexId x) {
    used_epoch_[x] = 0;
    for (VertexId xn : target.Neighbors(x)) BumpUsedNeighbors(xn, -1);
  }
  /// How many used vertices neighbor `x` — the O(1) replacement for the old
  /// per-candidate rescan of x's neighborhood in the lookahead rule.
  uint32_t UsedNeighborCount(VertexId x) const {
    return used_neighbor_epoch_[x] == epoch_ ? used_neighbor_count_[x] : 0;
  }

  bool allowed_active() const { return allowed_active_; }
  bool IsAllowed(VertexId x) const {
    return allowed_epoch_[x] == allowed_mark_;
  }
  /// Allowed neighbors of `x` (valid only while the allowed set is active);
  /// used vertices are always allowed, so AllowedDegree - UsedNeighborCount
  /// counts exactly the free allowed neighbors.
  uint32_t AllowedDegree(VertexId x) const { return allowed_degree_[x]; }

  /// pattern vertex -> target vertex mapping (kNoVertex when unmapped).
  std::vector<VertexId>& mapping() { return mapping_; }

  // --- Cooperative cancellation (serving/budget.h). A QueryControl is
  // --- installed per query via ScopedSearchControl; the searcher ticks
  // --- TickBudget() once per recursion state and the out-of-line
  // --- checkpoint charges the batch + polls flag/clock/caps.

  /// Amortized per-state budget checkpoint: returns true when the installed
  /// control says stop (always false when none is installed — the counter
  /// still runs but the checkpoint body exits before touching any atomic or
  /// the clock).
  bool TickBudget() {
    if (++states_since_check_ < kBudgetCheckInterval) return false;
    return BudgetCheckpoint();
  }

  /// Per-embedding tick for the embedding-count cap (only when a control is
  /// installed; no clock read).
  bool TickEmbedding() {
    if (control_ == nullptr) return false;
    return EmbeddingCheckpoint();
  }

  /// True when the current search was unwound by a budget stop rather than
  /// by the visitor. While a stopped control is installed, every search
  /// result on this thread is garbage — see serving::QueryControl.
  bool search_stopped() const { return search_stopped_; }
  serving::QueryControl* search_control() const { return control_; }

 private:
  friend class ScopedAllowed;
  friend class ScopedSearchControl;

  bool BudgetCheckpoint();     // out-of-line: charges states, polls control
  bool EmbeddingCheckpoint();  // out-of-line: charges one embedding

  void BumpUsedNeighbors(VertexId x, int32_t delta) {
    if (used_neighbor_epoch_[x] != epoch_) {
      used_neighbor_epoch_[x] = epoch_;
      used_neighbor_count_[x] = 0;
    }
    used_neighbor_count_[x] = static_cast<uint32_t>(
        static_cast<int32_t>(used_neighbor_count_[x]) + delta);
  }

  CsrGraphView scratch_target_;
  MatchPlan scratch_plan_;

  std::vector<VertexId> mapping_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> used_epoch_;
  std::vector<uint32_t> used_neighbor_epoch_;
  std::vector<uint32_t> used_neighbor_count_;

  bool allowed_active_ = false;
  bool allowed_dirty_ = false;
  uint32_t allowed_mark_ = 0;
  std::vector<uint32_t> allowed_epoch_;
  std::vector<uint32_t> allowed_degree_;
  std::vector<VertexId> allowed_list_;

  serving::QueryControl* control_ = nullptr;
  uint32_t states_since_check_ = 0;
  bool search_stopped_ = false;
};

/// RAII installation of a query's budget control onto a thread's context:
/// the engine installs it on the owning stream for the whole pipeline, and
/// VerifyPool installs it on each borrowed worker for the duration of its
/// claim loop. Restores the previous control (nesting-safe) and clears the
/// stop latch on both edges, so a stopped query can never bleed its stop
/// into the next query on this thread.
class ScopedSearchControl {
 public:
  ScopedSearchControl(MatchContext& ctx, serving::QueryControl* control)
      : ctx_(ctx), previous_(ctx.control_),
        previous_stopped_(ctx.search_stopped_) {
    ctx_.control_ = control;
    ctx_.search_stopped_ = false;
  }
  ~ScopedSearchControl() {
    ctx_.control_ = previous_;
    ctx_.search_stopped_ = previous_stopped_;
  }

  ScopedSearchControl(const ScopedSearchControl&) = delete;
  ScopedSearchControl& operator=(const ScopedSearchControl&) = delete;

 private:
  MatchContext& ctx_;
  serving::QueryControl* previous_;
  bool previous_stopped_;
};

/// RAII activation of a target-vertex restriction: only vertices passed to
/// Allow() may be mapped while the guard lives (the Grapes-style
/// connected-component verification). Deactivates on destruction, so a
/// stale restriction can never leak into the next search on this thread.
class ScopedAllowed {
 public:
  ScopedAllowed(MatchContext& ctx, size_t num_target_vertices) : ctx_(ctx) {
    ctx_.allowed_active_ = true;
    ctx_.allowed_dirty_ = true;
    if (++ctx_.allowed_mark_ == 0) {
      std::fill(ctx_.allowed_epoch_.begin(), ctx_.allowed_epoch_.end(), 0);
      ctx_.allowed_mark_ = 1;
    }
    if (ctx_.allowed_epoch_.size() < num_target_vertices) {
      ctx_.allowed_epoch_.resize(num_target_vertices, 0);
    }
    ctx_.allowed_list_.clear();
  }
  ~ScopedAllowed() { ctx_.allowed_active_ = false; }

  ScopedAllowed(const ScopedAllowed&) = delete;
  ScopedAllowed& operator=(const ScopedAllowed&) = delete;

  void Allow(VertexId v) {
    if (ctx_.allowed_epoch_[v] != ctx_.allowed_mark_) {
      ctx_.allowed_epoch_[v] = ctx_.allowed_mark_;
      ctx_.allowed_list_.push_back(v);
    }
  }

 private:
  MatchContext& ctx_;
};

namespace match_internal {

/// The recursive search, parameterized on the target view (CsrGraphView or
/// GraphRef) and on the visitor so the per-embedding callback inlines (the
/// old core paid a std::function indirection per embedding). Visitor:
/// bool(const std::vector<VertexId>& mapping) — return true to continue
/// enumerating, false to stop.
template <typename TargetView, typename Visitor>
class Searcher {
 public:
  Searcher(const MatchPlan& plan, const TargetView& target, MatchContext& ctx,
           MatchStats* stats, Visitor& visit)
      : plan_(plan), target_(target), ctx_(ctx), stats_(stats),
        visit_(visit) {}

  bool Run() {
    ctx_.BeginSearch(plan_.num_vertices(), target_);
    return Recurse(0);
  }

 private:
  bool Feasible(size_t depth, VertexId x) const {
    if (ctx_.IsUsed(x)) return false;
    if (ctx_.allowed_active() && !ctx_.IsAllowed(x)) return false;
    if (plan_.label_at(depth) != target_.label(x)) return false;
    const uint32_t target_degree = target_.Degree(x);
    if (target_degree < plan_.degree_at(depth)) return false;
    // Every already-mapped pattern neighbor must land on a target neighbor
    // of x. The plan precomputed exactly which neighbors are mapped here.
    const std::vector<VertexId>& mapping = ctx_.mapping();
    for (VertexId un : plan_.mapped_neighbors_at(depth)) {
      if (!target_.HasEdge(x, mapping[un])) return false;
    }
    // Lookahead: the still-unmapped pattern neighbors must fit among x's
    // free (and allowed) target neighbors — O(1) from the epoch-stamped
    // used-neighbor counters instead of rescanning x's neighborhood.
    const uint32_t free_neighbors =
        (ctx_.allowed_active() ? ctx_.AllowedDegree(x) : target_degree) -
        ctx_.UsedNeighborCount(x);
    return free_neighbors >= plan_.unmapped_neighbors_at(depth);
  }

  template <typename Range>
  bool Extend(size_t depth, const Range& candidates) {
    std::vector<VertexId>& mapping = ctx_.mapping();
    const VertexId u = plan_.vertex_at(depth);
    for (VertexId x : candidates) {
      if (!Feasible(depth, x)) continue;
      mapping[u] = x;
      ctx_.MarkUsed(target_, x);
      const bool keep_going = Recurse(depth + 1);
      ctx_.UnmarkUsed(target_, x);
      mapping[u] = kNoVertex;
      if (!keep_going) return false;
    }
    return true;
  }

  // Root candidates when the view has no label buckets: all vertices
  // (Feasible's label check filters, as in the classic matcher).
  struct AllVertices {
    VertexId count;
    struct Iterator {
      VertexId v;
      VertexId operator*() const { return v; }
      Iterator& operator++() { ++v; return *this; }
      bool operator!=(const Iterator& o) const { return v != o.v; }
    };
    Iterator begin() const { return {0}; }
    Iterator end() const { return {count}; }
  };

  bool Recurse(size_t depth) {
    if (stats_ != nullptr) ++stats_->states;
    // Amortized cancellation checkpoint: unwinds the search (returns false,
    // exactly like a visitor stop) when the query's budget control fires.
    // Callers that need to distinguish a stop from "no embedding" check
    // ctx.search_stopped() / control->stopped() afterwards.
    if (ctx_.TickBudget()) return false;
    if (depth == plan_.num_vertices()) {
      if (stats_ != nullptr) ++stats_->embeddings;
      if (ctx_.TickEmbedding()) return false;
      return visit_(ctx_.mapping());
    }
    const VertexId parent = plan_.parent_of(depth);
    if (parent != kNoVertex) {
      // Candidates: neighbors of the parent's image.
      return Extend(depth, target_.Neighbors(ctx_.mapping()[parent]));
    }
    if constexpr (TargetView::kHasLabelIndex) {
      // O(1) seed candidates from the label bucket.
      return Extend(depth, target_.VerticesWithLabel(plan_.label_at(depth)));
    } else {
      return Extend(depth, AllVertices{static_cast<VertexId>(
                               target_.NumVertices())});
    }
  }

  const MatchPlan& plan_;
  const TargetView& target_;
  MatchContext& ctx_;
  MatchStats* stats_;
  Visitor& visit_;
};

}  // namespace match_internal

/// Enumerates embeddings of `plan`'s pattern into `target` (a CsrGraphView
/// or GraphRef). The visitor is called once per embedding with the
/// pattern->target mapping and returns true to continue, false to stop.
/// Returns false iff stopped early. Callers are responsible for the cheap
/// cardinality pre-checks (see PlanContains) — this runs the search
/// unconditionally.
template <typename TargetView, typename Visitor>
bool EnumerateEmbeddings(const MatchPlan& plan, const TargetView& target,
                         MatchContext& ctx, MatchStats* stats,
                         Visitor&& visit) {
  match_internal::Searcher<TargetView, Visitor> searcher(plan, target, ctx,
                                                         stats, visit);
  return searcher.Run();
}

/// True iff the plan's pattern embeds into `target`. Includes the
/// vertex/edge cardinality pre-checks; allocation-free.
template <typename TargetView>
bool PlanContains(const MatchPlan& plan, const TargetView& target,
                  MatchContext& ctx, MatchStats* stats = nullptr) {
  if (plan.empty()) return true;
  if (plan.num_vertices() > target.NumVertices() ||
      plan.num_edges() > target.NumEdges()) {
    return false;
  }
  return !EnumerateEmbeddings(plan, target, ctx, stats,
                              [](const std::vector<VertexId>&) {
                                return false;  // stop at the first embedding
                              });
}

/// One embedding (pattern vertex -> target vertex) if any exists.
template <typename TargetView>
std::optional<std::vector<VertexId>> PlanFindEmbedding(
    const MatchPlan& plan, const TargetView& target, MatchContext& ctx,
    MatchStats* stats = nullptr) {
  if (plan.empty()) return std::vector<VertexId>{};
  if (plan.num_vertices() > target.NumVertices() ||
      plan.num_edges() > target.NumEdges()) {
    return std::nullopt;
  }
  std::optional<std::vector<VertexId>> found;
  EnumerateEmbeddings(plan, target, ctx, stats,
                      [&found](const std::vector<VertexId>& mapping) {
                        found = mapping;
                        return false;
                      });
  return found;
}

/// Counts embeddings, stopping at `limit` (0 = count all).
template <typename TargetView>
uint64_t PlanCountEmbeddings(const MatchPlan& plan, const TargetView& target,
                             MatchContext& ctx, uint64_t limit = 0,
                             MatchStats* stats = nullptr) {
  if (plan.empty()) return 1;
  if (plan.num_vertices() > target.NumVertices() ||
      plan.num_edges() > target.NumEdges()) {
    return 0;
  }
  uint64_t count = 0;
  EnumerateEmbeddings(plan, target, ctx, stats,
                      [&count, limit](const std::vector<VertexId>&) {
                        ++count;
                        return limit == 0 || count < limit;
                      });
  return count;
}

/// Plan-reuse entry point for one-shot targets: searches `target` directly
/// through a GraphRef — no CSR build, no allocation. Use a precompiled
/// CsrGraphView + PlanContains instead when the same target is verified
/// repeatedly (the methods and cache indexes do).
bool ContainsIn(const MatchPlan& plan, const Graph& target, MatchContext& ctx,
                MatchStats* stats = nullptr);

/// Target-reuse entry point for the supergraph direction: compiles
/// `pattern` into ctx's scratch plan (pre-checks first) and tests
/// containment against a fixed target view.
bool ContainsPattern(const Graph& pattern, const CsrGraphView& target,
                     MatchContext& ctx, MatchStats* stats = nullptr);

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_MATCH_CORE_H_
