#include "isomorphism/match_core.h"

#include <algorithm>

#include "serving/budget.h"

namespace igq {

void MatchPlan::Compile(const Graph& pattern) {
  // Pattern adjacency as CSR. The core never probes pattern edges, so the
  // sorted-range oracle is forced to skip the bitset build.
  pattern_.Assign(pattern, CsrGraphView::EdgeOracle::kSortedRange);
  num_edges_ = pattern.NumEdges();

  const size_t n = pattern_.NumVertices();
  order_.clear();
  parent_.clear();
  label_.clear();
  degree_.clear();
  mapped_offsets_.clear();
  mapped_neighbors_.clear();
  order_.reserve(n);
  parent_.assign(n, kNoVertex);
  depth_of_.assign(n, UINT32_MAX);

  // Most-constrained-first BFS, exactly the classic matcher's ordering:
  // repeatedly pick the unordered vertex with the most already-ordered
  // neighbors (ties: higher degree), remembering one ordered neighbor as
  // the candidate-generating parent.
  std::vector<uint32_t>& placed_neighbors = degree_;  // reuse as scratch
  placed_neighbors.assign(n, 0);
  for (size_t placed_count = 0; placed_count < n; ++placed_count) {
    VertexId best = kNoVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (depth_of_[v] != UINT32_MAX) continue;
      if (best == kNoVertex || placed_neighbors[v] > placed_neighbors[best] ||
          (placed_neighbors[v] == placed_neighbors[best] &&
           pattern_.Degree(v) > pattern_.Degree(best))) {
        best = v;
      }
    }
    for (VertexId w : pattern_.Neighbors(best)) {
      if (depth_of_[w] != UINT32_MAX) {
        parent_[order_.size()] = w;
        break;
      }
    }
    depth_of_[best] = static_cast<uint32_t>(order_.size());
    order_.push_back(best);
    for (VertexId w : pattern_.Neighbors(best)) ++placed_neighbors[w];
  }

  // Per-depth signatures and the exact adjacency-check lists: the pattern
  // neighbors of order_[d] that are mapped before depth d.
  label_.resize(n);
  mapped_offsets_.reserve(n + 1);
  mapped_offsets_.push_back(0);
  for (size_t d = 0; d < n; ++d) {
    const VertexId u = order_[d];
    label_[d] = pattern_.label(u);
    for (VertexId w : pattern_.Neighbors(u)) {
      if (depth_of_[w] < d) mapped_neighbors_.push_back(w);
    }
    mapped_offsets_.push_back(static_cast<uint32_t>(mapped_neighbors_.size()));
  }
  // degree_ doubled as the placed_neighbors scratch above; fill it last.
  degree_.resize(n);
  for (size_t d = 0; d < n; ++d) degree_[d] = pattern_.Degree(order_[d]);
}

size_t MatchPlan::MemoryBytes() const {
  return sizeof(*this) - sizeof(CsrGraphView) + pattern_.MemoryBytes() +
         (order_.capacity() + parent_.capacity() +
          mapped_neighbors_.capacity()) *
             sizeof(VertexId) +
         label_.capacity() * sizeof(Label) +
         (degree_.capacity() + mapped_offsets_.capacity() +
          depth_of_.capacity()) *
             sizeof(uint32_t);
}

MatchContext& MatchContext::ThreadLocal() {
  thread_local MatchContext context;
  return context;
}

bool MatchContext::BudgetCheckpoint() {
  const uint32_t charged = states_since_check_;
  states_since_check_ = 0;
  if (control_ == nullptr) return false;
  if (search_stopped_) return true;
  search_stopped_ = control_->ChargeStates(charged);
  return search_stopped_;
}

bool MatchContext::EmbeddingCheckpoint() {
  if (search_stopped_) return true;
  search_stopped_ = control_->ChargeEmbedding();
  return search_stopped_;
}

bool ContainsIn(const MatchPlan& plan, const Graph& target, MatchContext& ctx,
                MatchStats* stats) {
  if (plan.empty()) return true;
  if (plan.num_vertices() > target.NumVertices() ||
      plan.num_edges() > target.NumEdges()) {
    return false;
  }
  return PlanContains(plan, GraphRef(target), ctx, stats);
}

bool ContainsPattern(const Graph& pattern, const CsrGraphView& target,
                     MatchContext& ctx, MatchStats* stats) {
  if (pattern.NumVertices() == 0) return true;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  ctx.scratch_plan().Compile(pattern);
  if (stats != nullptr) ++stats->plan_compiles;
  return PlanContains(ctx.scratch_plan(), target, ctx, stats);
}

}  // namespace igq
