// VF2 subgraph-isomorphism algorithm (Cordella et al., TPAMI 2004) — the
// matcher the paper's three host methods use for their verification stage.
// Implements label/degree feasibility rules, a connectivity-driven variable
// order, and an optional restriction of the target vertex set (used by the
// Grapes-style connected-component verification).
#ifndef IGQ_ISOMORPHISM_VF2_H_
#define IGQ_ISOMORPHISM_VF2_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "isomorphism/matcher.h"

namespace igq {

/// VF2-based matcher with first-match early exit.
class Vf2Matcher : public SubgraphMatcher {
 public:
  bool Contains(const Graph& pattern, const Graph& target) const override;
  std::string Name() const override { return "VF2"; }

  /// Returns one embedding (pattern vertex -> target vertex) if any exists.
  static std::optional<std::vector<VertexId>> FindEmbedding(
      const Graph& pattern, const Graph& target);

  /// As FindEmbedding, but target vertices with allowed[v] == false are
  /// excluded from the mapping. `allowed` may be nullptr (no restriction).
  static std::optional<std::vector<VertexId>> FindEmbeddingRestricted(
      const Graph& pattern, const Graph& target,
      const std::vector<bool>* allowed);

  /// Counts embeddings, stopping at `limit` (0 = count all). Used by tests.
  static uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                                  uint64_t limit = 0);

  /// Total recursive states explored by the last call on this thread;
  /// exposed for the micro benchmarks.
  static uint64_t LastSearchStates();
};

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_VF2_H_
