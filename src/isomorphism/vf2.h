// VF2-style subgraph-isomorphism matcher (Cordella et al., TPAMI 2004) —
// the matcher the paper's three host methods use for their verification
// stage. Since the zero-allocation core refactor this class is a thin
// adapter over isomorphism/match_core.h: each call compiles a MatchPlan and
// builds a CSR target view into the calling thread's MatchContext scratch,
// so repeated calls are allocation-free after warm-up. Batch call sites
// that verify one query against many targets should use the core directly
// (compile the plan once, then ContainsIn per candidate) — the methods and
// the cache indexes do.
#ifndef IGQ_ISOMORPHISM_VF2_H_
#define IGQ_ISOMORPHISM_VF2_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "isomorphism/match_core.h"
#include "isomorphism/matcher.h"

namespace igq {

/// VF2-based matcher with first-match early exit.
class Vf2Matcher : public SubgraphMatcher {
 public:
  bool Contains(const Graph& pattern, const Graph& target,
                MatchStats* stats = nullptr) const override;
  std::string Name() const override { return "VF2"; }

  /// Returns one embedding (pattern vertex -> target vertex) if any exists.
  static std::optional<std::vector<VertexId>> FindEmbedding(
      const Graph& pattern, const Graph& target, MatchStats* stats = nullptr);

  /// As FindEmbedding, but target vertices with allowed[v] == false are
  /// excluded from the mapping. `allowed` may be nullptr (no restriction).
  static std::optional<std::vector<VertexId>> FindEmbeddingRestricted(
      const Graph& pattern, const Graph& target,
      const std::vector<bool>* allowed, MatchStats* stats = nullptr);

  /// Counts embeddings, stopping at `limit` (0 = count all). Used by tests.
  /// Search metrics flow exclusively through the MatchStats out-parameters
  /// (accumulated, never reset — one MatchStats can span a batch); the old
  /// LastSearchStates() thread-local side-channel is gone.
  static uint64_t CountEmbeddings(const Graph& pattern, const Graph& target,
                                  uint64_t limit = 0,
                                  MatchStats* stats = nullptr);
};

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_VF2_H_
