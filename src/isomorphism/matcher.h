// Abstract interface for subgraph-isomorphism testing (paper Definition 2):
// pattern ⊆ target iff an injective, label-preserving mapping exists under
// which every pattern edge maps to a target edge (non-induced monomorphism,
// the semantics used throughout the filter-then-verify literature).
#ifndef IGQ_ISOMORPHISM_MATCHER_H_
#define IGQ_ISOMORPHISM_MATCHER_H_

#include <string>

#include "graph/graph.h"

namespace igq {

struct MatchStats;  // isomorphism/match_core.h

/// Strategy interface so the verification stage of any method can swap
/// matching algorithms (VF2 by default, Ullmann as the classic baseline).
///
/// Search metrics flow through the explicit MatchStats out-parameter;
/// implementations must leave `stats` untouched when it is nullptr. (The
/// old thread_local LastSearchStates() side-channel misattributed states
/// whenever VerifyPool workers interleaved queries on one thread.)
class SubgraphMatcher {
 public:
  virtual ~SubgraphMatcher() = default;

  /// True iff `pattern` is subgraph-isomorphic to `target`. When `stats`
  /// is non-null, the search's metrics are ACCUMULATED into it.
  virtual bool Contains(const Graph& pattern, const Graph& target,
                        MatchStats* stats = nullptr) const = 0;

  /// Algorithm name for reports.
  virtual std::string Name() const = 0;
};

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_MATCHER_H_
