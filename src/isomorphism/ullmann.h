// Ullmann's subgraph-isomorphism algorithm (J.ACM 1976) — the classic
// baseline the paper cites as the ancestor of most matchers. Included both
// as a correctness cross-check for VF2 and for the micro-benchmarks. Since
// the zero-allocation core refactor it reads Graph adjacency directly (its
// refinement loop only iterates neighbors, so a CSR build would buy
// nothing) with its candidate matrices carved from a per-thread arena, so
// repeated calls are allocation-free after warm-up.
#ifndef IGQ_ISOMORPHISM_ULLMANN_H_
#define IGQ_ISOMORPHISM_ULLMANN_H_

#include "isomorphism/match_core.h"
#include "isomorphism/matcher.h"

namespace igq {

/// Ullmann matcher with the standard refinement procedure over a boolean
/// candidate matrix (bitset rows). MatchStats::states counts search states
/// entered, one per tentative row assignment plus one per solution.
class UllmannMatcher : public SubgraphMatcher {
 public:
  bool Contains(const Graph& pattern, const Graph& target,
                MatchStats* stats = nullptr) const override;
  std::string Name() const override { return "Ullmann"; }
};

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_ULLMANN_H_
