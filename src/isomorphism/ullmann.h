// Ullmann's subgraph-isomorphism algorithm (J.ACM 1976) — the classic
// baseline the paper cites as the ancestor of most matchers. Included both
// as a correctness cross-check for VF2 and for the micro-benchmarks.
#ifndef IGQ_ISOMORPHISM_ULLMANN_H_
#define IGQ_ISOMORPHISM_ULLMANN_H_

#include "isomorphism/matcher.h"

namespace igq {

/// Ullmann matcher with the standard refinement procedure over a boolean
/// candidate matrix (bitset rows).
class UllmannMatcher : public SubgraphMatcher {
 public:
  bool Contains(const Graph& pattern, const Graph& target) const override;
  std::string Name() const override { return "Ullmann"; }
};

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_ULLMANN_H_
