// Analytic subgraph-isomorphism cost model (§5.1). The paper extends the
// VF-complexity analysis of Cordella et al. [8]: given L labels, a pattern
// g' with n nodes, and a stored graph Gi with Ni >= n nodes,
//
//   c(g', Gi) = Ni * Ni! / (L^{n+1} * (Ni - n)!).
//
// The replacement policy uses these costs to prefer caching query graphs
// that spare *expensive* verifications, not merely many of them.
#ifndef IGQ_ISOMORPHISM_COST_MODEL_H_
#define IGQ_ISOMORPHISM_COST_MODEL_H_

#include <cstddef>

#include "common/log_space.h"

namespace igq {

/// Evaluates c(g', Gi) in log space (see DESIGN.md: Ni! overflows any
/// fixed-width float for paper-scale graphs).
///
/// `num_labels` L, `pattern_nodes` n, `target_nodes` Ni. Returns Zero when
/// n > Ni (no test would be run) and treats L < 1 as L = 1.
LogValue IsomorphismCost(size_t num_labels, size_t pattern_nodes,
                         size_t target_nodes);

}  // namespace igq

#endif  // IGQ_ISOMORPHISM_COST_MODEL_H_
