#include "isomorphism/ullmann.h"

#include <cstdint>
#include <vector>

namespace igq {
namespace {

// Row-major bit matrix: candidates[u] is a bitset over target vertices.
class BitMatrix {
 public:
  BitMatrix(size_t rows, size_t cols)
      : cols_(cols), words_((cols + 63) / 64), bits_(rows * words_, 0) {}

  void Set(size_t r, size_t c) { bits_[r * words_ + c / 64] |= 1ULL << (c % 64); }
  void Clear(size_t r, size_t c) {
    bits_[r * words_ + c / 64] &= ~(1ULL << (c % 64));
  }
  bool Test(size_t r, size_t c) const {
    return (bits_[r * words_ + c / 64] >> (c % 64)) & 1ULL;
  }
  bool RowEmpty(size_t r) const {
    for (size_t w = 0; w < words_; ++w) {
      if (bits_[r * words_ + w] != 0) return false;
    }
    return true;
  }
  size_t cols() const { return cols_; }

 private:
  size_t cols_;
  size_t words_;
  std::vector<uint64_t> bits_;
};

// Refinement: candidate (u, x) survives only if every pattern-neighbor of u
// has at least one surviving candidate among target-neighbors of x.
// Iterates to a fixed point. Returns false if some row becomes empty.
bool Refine(const Graph& pattern, const Graph& target, BitMatrix& m) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
      for (VertexId x = 0; x < target.NumVertices(); ++x) {
        if (!m.Test(u, x)) continue;
        bool supported = true;
        for (VertexId un : pattern.Neighbors(u)) {
          bool neighbor_ok = false;
          for (VertexId xn : target.Neighbors(x)) {
            if (m.Test(un, xn)) {
              neighbor_ok = true;
              break;
            }
          }
          if (!neighbor_ok) {
            supported = false;
            break;
          }
        }
        if (!supported) {
          m.Clear(u, x);
          changed = true;
        }
      }
      if (m.RowEmpty(u)) return false;
    }
  }
  return true;
}

bool Recurse(const Graph& pattern, const Graph& target, BitMatrix& m,
             std::vector<bool>& used, size_t depth) {
  if (depth == pattern.NumVertices()) return true;
  for (VertexId x = 0; x < target.NumVertices(); ++x) {
    if (used[x] || !m.Test(depth, x)) continue;
    // Tentatively fix depth -> x: restrict row `depth` to x only.
    BitMatrix saved = m;
    for (VertexId other = 0; other < target.NumVertices(); ++other) {
      if (other != x) m.Clear(depth, other);
    }
    used[x] = true;
    if (Refine(pattern, target, m) &&
        Recurse(pattern, target, m, used, depth + 1)) {
      return true;
    }
    used[x] = false;
    m = saved;
  }
  return false;
}

}  // namespace

bool UllmannMatcher::Contains(const Graph& pattern, const Graph& target) const {
  if (pattern.NumVertices() == 0) return true;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  BitMatrix m(pattern.NumVertices(), target.NumVertices());
  for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
    for (VertexId x = 0; x < target.NumVertices(); ++x) {
      if (pattern.label(u) == target.label(x) &&
          target.Degree(x) >= pattern.Degree(u)) {
        m.Set(u, x);
      }
    }
    if (m.RowEmpty(u)) return false;
  }
  if (!Refine(pattern, target, m)) return false;
  std::vector<bool> used(target.NumVertices(), false);
  return Recurse(pattern, target, m, used, 0);
}

}  // namespace igq
