#include "isomorphism/ullmann.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace igq {
namespace {

// All of Ullmann's mutable search state, reused across calls on a thread so
// the matcher never allocates after warm-up. The graphs are read directly
// (no per-call CSR build — refinement iterates adjacency, it never probes
// edges). The candidate matrix is row-major (one bitset row of target
// vertices per pattern vertex); saved_ holds one full matrix copy per
// recursion depth for backtracking.
struct UllmannScratch {
  const Graph* pattern = nullptr;  // rebound per call
  const Graph* target = nullptr;
  std::vector<uint64_t> matrix;
  std::vector<uint64_t> saved;
  std::vector<uint8_t> used;
  size_t words = 0;  // words per matrix row

  static UllmannScratch& ThreadLocal() {
    thread_local UllmannScratch scratch;
    return scratch;
  }

  bool Test(size_t r, size_t c) const {
    return (matrix[r * words + (c >> 6)] >> (c & 63)) & 1u;
  }
  void Set(size_t r, size_t c) {
    matrix[r * words + (c >> 6)] |= 1ULL << (c & 63);
  }
  void Clear(size_t r, size_t c) {
    matrix[r * words + (c >> 6)] &= ~(1ULL << (c & 63));
  }
  bool RowEmpty(size_t r) const {
    for (size_t w = 0; w < words; ++w) {
      if (matrix[r * words + w] != 0) return false;
    }
    return true;
  }
};

// Refinement: candidate (u, x) survives only if every pattern-neighbor of u
// has at least one surviving candidate among target-neighbors of x.
// Iterates to a fixed point. Returns false if some row becomes empty.
bool Refine(UllmannScratch& s) {
  const size_t np = s.pattern->NumVertices();
  const size_t nt = s.target->NumVertices();
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < np; ++u) {
      for (VertexId x = 0; x < nt; ++x) {
        if (!s.Test(u, x)) continue;
        bool supported = true;
        for (VertexId un : s.pattern->Neighbors(u)) {
          bool neighbor_ok = false;
          for (VertexId xn : s.target->Neighbors(x)) {
            if (s.Test(un, xn)) {
              neighbor_ok = true;
              break;
            }
          }
          if (!neighbor_ok) {
            supported = false;
            break;
          }
        }
        if (!supported) {
          s.Clear(u, x);
          changed = true;
        }
      }
      if (s.RowEmpty(u)) return false;
    }
  }
  return true;
}

bool Recurse(UllmannScratch& s, size_t depth, MatchStats* stats) {
  if (stats != nullptr) ++stats->states;
  const size_t np = s.pattern->NumVertices();
  if (depth == np) {
    if (stats != nullptr) ++stats->embeddings;
    return true;
  }
  const size_t matrix_words = np * s.words;
  const size_t nt = s.target->NumVertices();
  uint64_t* const save_slot = s.saved.data() + depth * matrix_words;
  for (VertexId x = 0; x < nt; ++x) {
    if (s.used[x] || !s.Test(depth, x)) continue;
    // Tentatively fix depth -> x: restrict row `depth` to x only, saving
    // the matrix into this depth's arena slot instead of a fresh copy.
    std::copy(s.matrix.begin(), s.matrix.end(), save_slot);
    for (VertexId other = 0; other < nt; ++other) {
      if (other != x) s.Clear(depth, other);
    }
    s.used[x] = 1;
    if (Refine(s) && Recurse(s, depth + 1, stats)) return true;
    s.used[x] = 0;
    std::copy(save_slot, save_slot + matrix_words, s.matrix.begin());
  }
  return false;
}

}  // namespace

bool UllmannMatcher::Contains(const Graph& pattern, const Graph& target,
                              MatchStats* stats) const {
  if (pattern.NumVertices() == 0) return true;
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;
  }
  UllmannScratch& s = UllmannScratch::ThreadLocal();
  s.pattern = &pattern;
  s.target = &target;
  const size_t np = pattern.NumVertices();
  const size_t nt = target.NumVertices();
  s.words = (nt + 63) / 64;
  s.matrix.assign(np * s.words, 0);
  s.saved.resize(np * np * s.words);
  s.used.assign(nt, 0);
  for (VertexId u = 0; u < np; ++u) {
    for (VertexId x = 0; x < nt; ++x) {
      if (pattern.label(u) == target.label(x) &&
          target.Degree(x) >= pattern.Degree(u)) {
        s.Set(u, x);
      }
    }
    if (s.RowEmpty(u)) return false;
  }
  if (!Refine(s)) return false;
  return Recurse(s, 0, stats);
}

}  // namespace igq
