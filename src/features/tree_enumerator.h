// Exhaustive subtree enumeration (CT-Index feature generator): every edge
// subset of the graph that forms a tree with at most `max_vertices` vertices
// is emitted once, keyed by its canonical form.
#ifndef IGQ_FEATURES_TREE_ENUMERATOR_H_
#define IGQ_FEATURES_TREE_ENUMERATOR_H_

#include <cstddef>

#include "features/feature_set.h"
#include "graph/graph.h"

namespace igq {

struct TreeEnumeratorOptions {
  /// Maximum subtree size in vertices (CT-Index default 6).
  size_t max_vertices = 6;
  /// Safety valve for dense graphs: once this many distinct tree *instances*
  /// have been generated the enumeration stops and `saturated` is set. The
  /// CT-Index fingerprint treats a saturated graph as matching everything,
  /// which preserves the no-false-negative guarantee (see DESIGN.md §6).
  size_t max_instances = 2'000'000;
};

struct TreeFeatureResult {
  StringFeatureCounts counts;
  bool saturated = false;
};

/// Enumerates all subtree instances and returns canonical-form counts.
TreeFeatureResult CountTreeFeatures(const Graph& graph,
                                    const TreeEnumeratorOptions& options);

}  // namespace igq

#endif  // IGQ_FEATURES_TREE_ENUMERATOR_H_
