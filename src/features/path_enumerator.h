// Exhaustive simple-path enumeration up to a maximum length — the feature
// generator of GraphGrepSX and Grapes (paths of length <= 4 edges in the
// paper's configuration) and of both iGQ sub-indexes.
#ifndef IGQ_FEATURES_PATH_ENUMERATOR_H_
#define IGQ_FEATURES_PATH_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "features/feature_set.h"
#include "graph/graph.h"

namespace igq {

/// Configuration for path enumeration.
struct PathEnumeratorOptions {
  /// Maximum path length in edges (paper default 4: paths of 1..5 vertices).
  size_t max_edges = 4;
  /// Whether single-vertex (length-0) "paths" are emitted as features.
  bool include_single_vertices = true;
};

/// Calls `sink(key, start_vertex)` once per *directed* simple-path instance
/// (and once per vertex if include_single_vertices). `key` is the canonical
/// packed label sequence, `start_vertex` the instance's first vertex —
/// Grapes stores these as its location info.
void EnumeratePaths(const Graph& graph, const PathEnumeratorOptions& options,
                    const std::function<void(PathKey, VertexId)>& sink);

/// Convenience: aggregates EnumeratePaths into a key -> count multiset.
PathFeatureCounts CountPathFeatures(const Graph& graph,
                                    const PathEnumeratorOptions& options);

/// Like CountPathFeatures but restricted to the vertex range
/// [begin_vertex, end_vertex) as path start points; used for multi-threaded
/// Grapes-style index construction where each thread owns a vertex slice.
void EnumeratePathsFromRange(const Graph& graph,
                             const PathEnumeratorOptions& options,
                             VertexId begin_vertex, VertexId end_vertex,
                             const std::function<void(PathKey, VertexId)>& sink);

}  // namespace igq

#endif  // IGQ_FEATURES_PATH_ENUMERATOR_H_
