#include "features/cycle_enumerator.h"

#include "features/canonical.h"

namespace igq {
namespace {

// Cycles are discovered from their minimum vertex (`root`): DFS over simple
// paths whose interior vertices are all > root; a neighbor equal to root
// closes a cycle. Each undirected cycle is seen twice (both directions);
// requiring path[1] < path.back() keeps exactly one orientation.
class CycleSearch {
 public:
  CycleSearch(const Graph& graph, const CycleEnumeratorOptions& options,
              CycleFeatureResult& result)
      : graph_(graph),
        options_(options),
        result_(result),
        on_path_(graph.NumVertices(), false) {}

  void Run() {
    for (VertexId root = 0; root < graph_.NumVertices() && !result_.saturated;
         ++root) {
      path_.assign(1, root);
      on_path_[root] = true;
      Dfs(root);
      on_path_[root] = false;
    }
  }

 private:
  void Dfs(VertexId last) {
    if (result_.saturated) return;
    for (VertexId next : graph_.Neighbors(last)) {
      if (result_.saturated) return;
      const VertexId root = path_.front();
      if (next == root && path_.size() >= 3 && path_[1] < path_.back()) {
        EmitCycle();
        continue;
      }
      if (next <= root || on_path_[next]) continue;
      if (path_.size() >= options_.max_vertices) continue;
      path_.push_back(next);
      on_path_[next] = true;
      Dfs(next);
      on_path_[next] = false;
      path_.pop_back();
    }
  }

  void EmitCycle() {
    std::vector<Label> labels(path_.size());
    for (size_t i = 0; i < path_.size(); ++i) labels[i] = graph_.label(path_[i]);
    ++result_.counts[CycleCanonicalForm(labels)];
    if (++instances_ >= options_.max_instances) result_.saturated = true;
  }

  const Graph& graph_;
  const CycleEnumeratorOptions& options_;
  CycleFeatureResult& result_;
  std::vector<VertexId> path_;
  std::vector<bool> on_path_;
  size_t instances_ = 0;
};

}  // namespace

CycleFeatureResult CountCycleFeatures(const Graph& graph,
                                      const CycleEnumeratorOptions& options) {
  CycleFeatureResult result;
  CycleSearch search(graph, options, result);
  search.Run();
  return result;
}

}  // namespace igq
