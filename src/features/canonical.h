// Canonical string forms for tree and cycle features.
//
// CT-Index's key insight (cited in §2 of the paper) is that trees and cycles
// admit linear-time string canonical forms — unlike general graphs — so
// features can be deduplicated and hashed by string. We implement AHU-style
// center-rooted canonicalization for trees and rotation/reflection
// minimization for cycles.
#ifndef IGQ_FEATURES_CANONICAL_H_
#define IGQ_FEATURES_CANONICAL_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace igq {

/// Canonical form of a labeled free tree. `tree` must be a connected acyclic
/// graph; the result is identical for all isomorphic labeled trees.
std::string TreeCanonicalForm(const Graph& tree);

/// Canonical form of a labeled cycle given as the label sequence around the
/// cycle: the lexicographically smallest rotation over both directions.
std::string CycleCanonicalForm(const std::vector<Label>& cycle_labels);

}  // namespace igq

#endif  // IGQ_FEATURES_CANONICAL_H_
