// Canonical string forms for tree and cycle features.
//
// CT-Index's key insight (cited in §2 of the paper) is that trees and cycles
// admit linear-time string canonical forms — unlike general graphs — so
// features can be deduplicated and hashed by string. We implement AHU-style
// center-rooted canonicalization for trees and rotation/reflection
// minimization for cycles.
#ifndef IGQ_FEATURES_CANONICAL_H_
#define IGQ_FEATURES_CANONICAL_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace igq {

/// Canonical form of a labeled free tree. `tree` must be a connected acyclic
/// graph; the result is identical for all isomorphic labeled trees.
std::string TreeCanonicalForm(const Graph& tree);

/// Canonical form of a labeled cycle given as the label sequence around the
/// cycle: the lexicographically smallest rotation over both directions.
std::string CycleCanonicalForm(const std::vector<Label>& cycle_labels);

/// Canonical code of an arbitrary labeled graph: two graphs produce the same
/// byte string iff they are isomorphic, so the code is a hashable exact-match
/// key (the query caches key their exact-hit fast path on it).
///
/// Algorithm: iterative exact color refinement (signature = old color +
/// sorted neighbor-color multiset, re-ranked densely each round) followed by
/// individualization-refinement backtracking over the smallest non-singleton
/// cell — the cell with the fewest branches — taking the lexicographically
/// minimal leaf code. No automorphism pruning: worst cases are exponential,
/// which is fine for query-scale graphs (tens of vertices) but makes this
/// unsuitable as-is for large dataset graphs.
///
/// Code layout (little-endian u32s): |V|, |E|, the labels in canonical
/// vertex order, then the canonical edge list sorted ascending as
/// (min, max) pairs. docs/FORMATS.md specifies the exact bytes.
std::string GraphCanonicalCode(const Graph& graph);

}  // namespace igq

#endif  // IGQ_FEATURES_CANONICAL_H_
