#include "features/tree_enumerator.h"

#include <algorithm>
#include <numeric>

#include "features/canonical.h"

namespace igq {
namespace {

// Union-find over <= max_vertices elements for spanning-tree checks.
class TinyUnionFind {
 public:
  explicit TinyUnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct Edge {
  uint8_t a;
  uint8_t b;
};

// Emits every spanning tree of the induced subgraph on `subset` (local edge
// list `edges`, |subset| = k) by trying all (k-1)-subsets of edges and
// keeping the acyclic connected ones. k <= 6 so this is tiny.
class SpanningTreeEmitter {
 public:
  SpanningTreeEmitter(const Graph& graph, const std::vector<VertexId>& subset,
                      TreeFeatureResult& result,
                      const TreeEnumeratorOptions& options, size_t& instances)
      : graph_(graph),
        subset_(subset),
        result_(result),
        options_(options),
        instances_(instances) {
    const size_t k = subset.size();
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        if (graph.HasEdge(subset[i], subset[j])) {
          edges_.push_back({static_cast<uint8_t>(i), static_cast<uint8_t>(j)});
        }
      }
    }
  }

  void Run() {
    const size_t k = subset_.size();
    if (k == 1) {
      Emit({});
      return;
    }
    if (edges_.size() < k - 1) return;  // cannot span
    chosen_.clear();
    Choose(0, k - 1);
  }

 private:
  void Choose(size_t from, size_t needed) {
    if (result_.saturated) return;
    if (needed == 0) {
      TryEmit();
      return;
    }
    if (edges_.size() - from < needed) return;
    for (size_t i = from; i < edges_.size(); ++i) {
      chosen_.push_back(i);
      Choose(i + 1, needed - 1);
      chosen_.pop_back();
      if (result_.saturated) return;
    }
  }

  void TryEmit() {
    TinyUnionFind uf(subset_.size());
    for (size_t index : chosen_) {
      if (!uf.Union(edges_[index].a, edges_[index].b)) return;  // cycle
    }
    // k-1 acyclic edges over k vertices => spanning tree.
    Emit(chosen_);
  }

  void Emit(const std::vector<size_t>& edge_indices) {
    Graph tree;
    for (VertexId v : subset_) tree.AddVertex(graph_.label(v));
    for (size_t index : edge_indices) {
      tree.AddEdge(edges_[index].a, edges_[index].b);
    }
    ++result_.counts[TreeCanonicalForm(tree)];
    if (++instances_ >= options_.max_instances) result_.saturated = true;
  }

  const Graph& graph_;
  const std::vector<VertexId>& subset_;
  TreeFeatureResult& result_;
  const TreeEnumeratorOptions& options_;
  size_t& instances_;
  std::vector<Edge> edges_;
  std::vector<size_t> chosen_;
};

// ESU (Wernicke) enumeration of connected vertex subsets of size
// <= max_vertices; each subset is visited exactly once.
class EsuEnumerator {
 public:
  EsuEnumerator(const Graph& graph, const TreeEnumeratorOptions& options,
                TreeFeatureResult& result)
      : graph_(graph),
        options_(options),
        result_(result),
        in_subset_(graph.NumVertices(), false),
        in_neighborhood_(graph.NumVertices(), false) {}

  void Run() {
    for (VertexId v = 0; v < graph_.NumVertices() && !result_.saturated; ++v) {
      subset_.assign(1, v);
      in_subset_[v] = true;
      std::vector<VertexId> extension;
      std::vector<VertexId> touched;
      for (VertexId u : graph_.Neighbors(v)) {
        if (u > v) {
          extension.push_back(u);
          in_neighborhood_[u] = true;
          touched.push_back(u);
        }
      }
      EmitSubset();
      Extend(extension, v);
      in_subset_[v] = false;
      for (VertexId u : touched) in_neighborhood_[u] = false;
    }
  }

 private:
  void EmitSubset() {
    SpanningTreeEmitter emitter(graph_, subset_, result_, options_, instances_);
    emitter.Run();
  }

  void Extend(std::vector<VertexId> extension, VertexId root) {
    if (subset_.size() >= options_.max_vertices || result_.saturated) return;
    while (!extension.empty() && !result_.saturated) {
      const VertexId w = extension.back();
      extension.pop_back();
      std::vector<VertexId> next = extension;
      std::vector<VertexId> touched;
      for (VertexId u : graph_.Neighbors(w)) {
        // Exclusive neighborhood: not in subset, not already adjacent to it.
        if (u > root && !in_subset_[u] && !in_neighborhood_[u]) {
          next.push_back(u);
          in_neighborhood_[u] = true;
          touched.push_back(u);
        }
      }
      subset_.push_back(w);
      in_subset_[w] = true;
      EmitSubset();
      Extend(std::move(next), root);
      in_subset_[w] = false;
      subset_.pop_back();
      for (VertexId u : touched) in_neighborhood_[u] = false;
    }
  }

  const Graph& graph_;
  const TreeEnumeratorOptions& options_;
  TreeFeatureResult& result_;
  std::vector<VertexId> subset_;
  std::vector<bool> in_subset_;
  std::vector<bool> in_neighborhood_;
  size_t instances_ = 0;
};

}  // namespace

TreeFeatureResult CountTreeFeatures(const Graph& graph,
                                    const TreeEnumeratorOptions& options) {
  TreeFeatureResult result;
  EsuEnumerator enumerator(graph, options, result);
  enumerator.Run();
  return result;
}

}  // namespace igq
