// Feature keys and per-graph feature multisets.
//
// The filter-then-verify methods and both iGQ sub-indexes all reduce graphs
// to multisets of *features* (paths, trees, cycles) keyed by a canonical
// form. Path features are the workhorse (GGSX, Grapes, Algorithms 1-2), so
// they get a compact packed-uint64 key; tree/cycle features (CT-Index) use
// canonical strings.
#ifndef IGQ_FEATURES_FEATURE_SET_H_
#define IGQ_FEATURES_FEATURE_SET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace igq {

/// Packed canonical key for a path feature of up to kMaxPathVertices labels.
/// Layout: byte 0 = vertex count, bytes 1..7 = labels (each must be < 255).
using PathKey = uint64_t;

/// Longest path feature (in vertices) that fits a PathKey.
inline constexpr size_t kMaxPathVertices = 7;

/// Packs a label sequence into a canonical PathKey: the sequence is replaced
/// by min(sequence, reversed sequence) so both traversal directions of an
/// undirected path map to the same key. Labels must be < 255 and
/// labels.size() must be in [1, kMaxPathVertices].
PathKey PackPathKey(const std::vector<Label>& labels);

/// Inverse of PackPathKey (returns the canonical orientation).
std::vector<Label> UnpackPathKey(PathKey key);

/// Number of vertices encoded in `key`.
inline size_t PathKeyLength(PathKey key) { return key & 0xff; }

/// The i-th label of `key` (canonical orientation), i < PathKeyLength(key).
/// Lets hot paths (the trie descents) walk a key without materializing the
/// UnpackPathKey vector.
inline Label PathKeyLabelAt(PathKey key, size_t i) {
  return static_cast<Label>((key >> (8 * (i + 1))) & 0xff) - 1;
}

/// Multiset of path features: canonical key -> number of occurrences.
/// Occurrences count *directed* path instances, so an undirected instance
/// contributes 2 for paths of >= 2 vertices and 1 for single vertices; the
/// convention is applied uniformly to dataset and query graphs, which is all
/// the counting filters require.
using PathFeatureCounts = std::unordered_map<PathKey, uint32_t>;

/// Multiset of string-keyed features (canonical trees / cycles).
using StringFeatureCounts = std::unordered_map<std::string, uint32_t>;

}  // namespace igq

#endif  // IGQ_FEATURES_FEATURE_SET_H_
