#include "features/canonical.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace igq {
namespace {

// AHU encoding of the subtree rooted at `v` (coming from `parent`):
// "(<label>" + sorted child encodings + ")".
std::string EncodeRooted(const Graph& tree, VertexId v, VertexId parent) {
  std::vector<std::string> children;
  for (VertexId w : tree.Neighbors(v)) {
    if (w != parent) children.push_back(EncodeRooted(tree, w, v));
  }
  std::sort(children.begin(), children.end());
  std::string out = "(";
  out += std::to_string(tree.label(v));
  for (const std::string& child : children) out += child;
  out += ")";
  return out;
}

// Returns the 1 or 2 centers of the tree (vertices minimizing eccentricity),
// found by iteratively peeling leaves.
std::vector<VertexId> TreeCenters(const Graph& tree) {
  const size_t n = tree.NumVertices();
  if (n == 0) return {};
  if (n == 1) return {0};
  std::vector<size_t> degree(n);
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = tree.Degree(v);
    if (degree[v] <= 1) leaves.push_back(v);
  }
  size_t remaining = n;
  std::vector<VertexId> current = leaves;
  while (remaining > 2) {
    remaining -= current.size();
    std::vector<VertexId> next;
    for (VertexId leaf : current) {
      for (VertexId w : tree.Neighbors(leaf)) {
        if (--degree[w] == 1) next.push_back(w);
      }
      degree[leaf] = 0;
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace

std::string TreeCanonicalForm(const Graph& tree) {
  if (tree.NumVertices() == 0) return "()";
  std::vector<VertexId> centers = TreeCenters(tree);
  std::string best;
  for (VertexId center : centers) {
    std::string enc = EncodeRooted(tree, center, center);
    if (best.empty() || enc < best) best = std::move(enc);
  }
  return best;
}

namespace {

// Individualization-refinement search state for GraphCanonicalCode. Colors
// are dense ranks 0..k-1; the ordering of color classes is canonical (it is
// derived from sorted invariants only), so "first smallest non-singleton
// cell" is an isomorphism-invariant branching target.
class CanonicalSearch {
 public:
  explicit CanonicalSearch(const Graph& graph) : graph_(graph) {}

  std::string Run() {
    const size_t n = graph_.NumVertices();
    std::vector<uint32_t> colors(n);
    for (VertexId v = 0; v < n; ++v) colors[v] = graph_.label(v);
    RankDense(&colors);
    Search(std::move(colors));
    return std::move(best_);
  }

 private:
  // Replaces arbitrary color values with their dense ranks, preserving
  // order: equal values share a rank, smaller values get smaller ranks.
  static void RankDense(std::vector<uint32_t>* colors) {
    std::vector<uint32_t> sorted(*colors);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (uint32_t& color : *colors) {
      color = static_cast<uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), color) -
          sorted.begin());
    }
  }

  // Exact refinement to a stable partition: each round re-ranks vertices by
  // (current color, sorted multiset of neighbor colors) until the number of
  // classes stops growing. No hashing — signatures are compared directly,
  // so distinct signatures can never collapse into one class.
  void Refine(std::vector<uint32_t>* colors) const {
    const size_t n = colors->size();
    using Signature = std::pair<uint32_t, std::vector<uint32_t>>;
    std::vector<Signature> signatures(n);
    std::vector<uint32_t> order(n);
    size_t num_classes = 0;
    for (;;) {
      for (VertexId v = 0; v < n; ++v) {
        Signature& sig = signatures[v];
        sig.first = (*colors)[v];
        sig.second.clear();
        for (VertexId w : graph_.Neighbors(v)) {
          sig.second.push_back((*colors)[w]);
        }
        std::sort(sig.second.begin(), sig.second.end());
      }
      for (VertexId v = 0; v < n; ++v) order[v] = v;
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return signatures[a] < signatures[b];
      });
      size_t fresh_classes = 0;
      for (size_t i = 0; i < n; ++i) {
        if (i > 0 && signatures[order[i]] != signatures[order[i - 1]]) {
          ++fresh_classes;
        }
        (*colors)[order[i]] = static_cast<uint32_t>(fresh_classes);
      }
      if (n > 0) ++fresh_classes;  // classes = last rank + 1
      if (fresh_classes == num_classes) return;  // stable partition
      num_classes = fresh_classes;
    }
  }

  void Search(std::vector<uint32_t> colors) {
    Refine(&colors);
    const size_t n = colors.size();

    // Smallest non-singleton cell (ties: smallest color). SIZE_MAX when the
    // partition is discrete.
    std::vector<uint32_t> class_size(n, 0);
    for (uint32_t color : colors) ++class_size[color];
    uint32_t target_color = 0;
    size_t target_size = SIZE_MAX;
    for (uint32_t c = 0; c < n; ++c) {
      if (class_size[c] > 1 && class_size[c] < target_size) {
        target_color = c;
        target_size = class_size[c];
      }
    }
    if (target_size == SIZE_MAX) {
      std::string code = EncodeDiscrete(colors);
      if (best_.empty() || code < best_) best_ = std::move(code);
      return;
    }

    // Individualize each member of the target cell in turn: the chosen
    // vertex gets a rank just below its classmates, then refinement runs
    // again. Doubling preserves the relative order of every other class.
    for (VertexId v = 0; v < n; ++v) {
      if (colors[v] != target_color) continue;
      std::vector<uint32_t> child(colors);
      for (VertexId u = 0; u < n; ++u) {
        child[u] = child[u] * 2 + (u == v ? 0 : 1);
      }
      RankDense(&child);
      Search(std::move(child));
    }
  }

  // With a discrete coloring, color[v] IS the canonical position of v.
  std::string EncodeDiscrete(const std::vector<uint32_t>& colors) const {
    const size_t n = colors.size();
    std::vector<VertexId> at_position(n);  // canonical position -> vertex
    for (VertexId v = 0; v < n; ++v) at_position[colors[v]] = v;
    std::string code;
    code.reserve(4 * (2 + n + 2 * graph_.NumEdges()));
    auto put_u32 = [&code](uint32_t value) {
      code.push_back(static_cast<char>(value & 0xff));
      code.push_back(static_cast<char>((value >> 8) & 0xff));
      code.push_back(static_cast<char>((value >> 16) & 0xff));
      code.push_back(static_cast<char>((value >> 24) & 0xff));
    };
    put_u32(static_cast<uint32_t>(n));
    put_u32(static_cast<uint32_t>(graph_.NumEdges()));
    for (size_t p = 0; p < n; ++p) put_u32(graph_.label(at_position[p]));
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(graph_.NumEdges());
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : graph_.Neighbors(v)) {
        if (v < w) {
          edges.emplace_back(std::min(colors[v], colors[w]),
                             std::max(colors[v], colors[w]));
        }
      }
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [a, b] : edges) {
      put_u32(a);
      put_u32(b);
    }
    return code;
  }

  const Graph& graph_;
  std::string best_;
};

}  // namespace

std::string GraphCanonicalCode(const Graph& graph) {
  return CanonicalSearch(graph).Run();
}

std::string CycleCanonicalForm(const std::vector<Label>& cycle_labels) {
  const size_t n = cycle_labels.size();
  std::vector<Label> best = cycle_labels;
  std::vector<Label> candidate(n);
  // All rotations, both directions.
  for (int direction = 0; direction < 2; ++direction) {
    for (size_t shift = 0; shift < n; ++shift) {
      for (size_t i = 0; i < n; ++i) {
        const size_t index = direction == 0 ? (shift + i) % n
                                            : (shift + n - i) % n;
        candidate[i] = cycle_labels[index];
      }
      if (candidate < best) best = candidate;
    }
  }
  std::string out = "c";
  for (Label label : best) {
    out += ":";
    out += std::to_string(label);
  }
  return out;
}

}  // namespace igq
