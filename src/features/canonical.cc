#include "features/canonical.h"

#include <algorithm>

namespace igq {
namespace {

// AHU encoding of the subtree rooted at `v` (coming from `parent`):
// "(<label>" + sorted child encodings + ")".
std::string EncodeRooted(const Graph& tree, VertexId v, VertexId parent) {
  std::vector<std::string> children;
  for (VertexId w : tree.Neighbors(v)) {
    if (w != parent) children.push_back(EncodeRooted(tree, w, v));
  }
  std::sort(children.begin(), children.end());
  std::string out = "(";
  out += std::to_string(tree.label(v));
  for (const std::string& child : children) out += child;
  out += ")";
  return out;
}

// Returns the 1 or 2 centers of the tree (vertices minimizing eccentricity),
// found by iteratively peeling leaves.
std::vector<VertexId> TreeCenters(const Graph& tree) {
  const size_t n = tree.NumVertices();
  if (n == 0) return {};
  if (n == 1) return {0};
  std::vector<size_t> degree(n);
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = tree.Degree(v);
    if (degree[v] <= 1) leaves.push_back(v);
  }
  size_t remaining = n;
  std::vector<VertexId> current = leaves;
  while (remaining > 2) {
    remaining -= current.size();
    std::vector<VertexId> next;
    for (VertexId leaf : current) {
      for (VertexId w : tree.Neighbors(leaf)) {
        if (--degree[w] == 1) next.push_back(w);
      }
      degree[leaf] = 0;
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace

std::string TreeCanonicalForm(const Graph& tree) {
  if (tree.NumVertices() == 0) return "()";
  std::vector<VertexId> centers = TreeCenters(tree);
  std::string best;
  for (VertexId center : centers) {
    std::string enc = EncodeRooted(tree, center, center);
    if (best.empty() || enc < best) best = std::move(enc);
  }
  return best;
}

std::string CycleCanonicalForm(const std::vector<Label>& cycle_labels) {
  const size_t n = cycle_labels.size();
  std::vector<Label> best = cycle_labels;
  std::vector<Label> candidate(n);
  // All rotations, both directions.
  for (int direction = 0; direction < 2; ++direction) {
    for (size_t shift = 0; shift < n; ++shift) {
      for (size_t i = 0; i < n; ++i) {
        const size_t index = direction == 0 ? (shift + i) % n
                                            : (shift + n - i) % n;
        candidate[i] = cycle_labels[index];
      }
      if (candidate < best) best = candidate;
    }
  }
  std::string out = "c";
  for (Label label : best) {
    out += ":";
    out += std::to_string(label);
  }
  return out;
}

}  // namespace igq
