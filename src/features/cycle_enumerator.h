// Simple-cycle enumeration up to a maximum length (CT-Index indexes cycles
// of up to 8 vertices alongside trees).
#ifndef IGQ_FEATURES_CYCLE_ENUMERATOR_H_
#define IGQ_FEATURES_CYCLE_ENUMERATOR_H_

#include <cstddef>

#include "features/feature_set.h"
#include "graph/graph.h"

namespace igq {

struct CycleEnumeratorOptions {
  /// Maximum cycle length in vertices (CT-Index default 8).
  size_t max_vertices = 8;
  /// Instance budget; beyond it the result is marked saturated (see
  /// TreeEnumeratorOptions::max_instances for semantics).
  size_t max_instances = 2'000'000;
};

struct CycleFeatureResult {
  StringFeatureCounts counts;
  bool saturated = false;
};

/// Enumerates each simple cycle of 3..max_vertices vertices exactly once and
/// returns canonical-form counts.
CycleFeatureResult CountCycleFeatures(const Graph& graph,
                                      const CycleEnumeratorOptions& options);

}  // namespace igq

#endif  // IGQ_FEATURES_CYCLE_ENUMERATOR_H_
