#include "features/feature_set.h"

#include <algorithm>
#include <cassert>

namespace igq {

PathKey PackPathKey(const std::vector<Label>& labels) {
  assert(!labels.empty() && labels.size() <= kMaxPathVertices);
  // Canonical orientation: lexicographically smaller of the two directions.
  bool reversed = false;
  for (size_t i = 0, j = labels.size() - 1; i < j; ++i, --j) {
    if (labels[i] != labels[j]) {
      reversed = labels[j] < labels[i];
      break;
    }
  }
  PathKey key = static_cast<PathKey>(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    const Label label = reversed ? labels[labels.size() - 1 - i] : labels[i];
    assert(label < 255);
    key |= static_cast<PathKey>(label + 1) << (8 * (i + 1));
  }
  return key;
}

std::vector<Label> UnpackPathKey(PathKey key) {
  const size_t length = PathKeyLength(key);
  std::vector<Label> labels(length);
  for (size_t i = 0; i < length; ++i) {
    labels[i] = PathKeyLabelAt(key, i);
  }
  return labels;
}

}  // namespace igq
