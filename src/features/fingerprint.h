// Hash fingerprints (bitmaps) over canonical feature strings — CT-Index's
// per-graph index structure. Checking "query may be subgraph of G" reduces
// to a bitwise subset test between the two fingerprints.
#ifndef IGQ_FEATURES_FINGERPRINT_H_
#define IGQ_FEATURES_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace igq {

/// Fixed-width bitmap with feature hashing (CT-Index default: 4096 bits).
class Fingerprint {
 public:
  /// `bits` must be a positive multiple of 64.
  explicit Fingerprint(size_t bits = 4096)
      : bits_(bits), words_(bits / 64, 0) {}

  /// Hashes a canonical feature string into the bitmap.
  void AddFeature(const std::string& canonical_form);

  /// Sets every bit; used for saturated graphs so they are never filtered
  /// out (preserves the no-false-negative guarantee).
  void Saturate();

  /// True iff every set bit of `other` is also set here — i.e. this graph
  /// may contain everything `other` (a query fingerprint) requires.
  bool CoversAllBitsOf(const Fingerprint& other) const;

  size_t bit_count() const { return bits_; }
  size_t PopCount() const;
  size_t MemoryBytes() const { return sizeof(*this) + words_.capacity() * 8; }

  bool operator==(const Fingerprint& other) const {
    return words_ == other.words_;
  }

 private:
  size_t bits_;
  std::vector<uint64_t> words_;
};

}  // namespace igq

#endif  // IGQ_FEATURES_FINGERPRINT_H_
