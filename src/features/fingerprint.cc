#include "features/fingerprint.h"

namespace igq {
namespace {

// FNV-1a 64-bit string hash.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Fingerprint::AddFeature(const std::string& canonical_form) {
  const uint64_t h = Fnv1a(canonical_form);
  const size_t bit = h % bits_;
  words_[bit / 64] |= 1ULL << (bit % 64);
}

void Fingerprint::Saturate() {
  for (uint64_t& word : words_) word = ~0ULL;
}

bool Fingerprint::CoversAllBitsOf(const Fingerprint& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

size_t Fingerprint::PopCount() const {
  size_t count = 0;
  for (uint64_t word : words_) count += __builtin_popcountll(word);
  return count;
}

}  // namespace igq
