#include "features/path_enumerator.h"

namespace igq {
namespace {

// Iterative-deepening-free DFS extending the current simple path. `labels`
// carries the label sequence; vertices on the path are marked in `on_path`.
void Extend(const Graph& graph, const PathEnumeratorOptions& options,
            VertexId start, VertexId last, std::vector<Label>& labels,
            std::vector<bool>& on_path,
            const std::function<void(PathKey, VertexId)>& sink) {
  if (labels.size() - 1 >= options.max_edges) return;
  for (VertexId next : graph.Neighbors(last)) {
    if (on_path[next]) continue;
    labels.push_back(graph.label(next));
    sink(PackPathKey(labels), start);
    on_path[next] = true;
    Extend(graph, options, start, next, labels, on_path, sink);
    on_path[next] = false;
    labels.pop_back();
  }
}

}  // namespace

void EnumeratePathsFromRange(
    const Graph& graph, const PathEnumeratorOptions& options,
    VertexId begin_vertex, VertexId end_vertex,
    const std::function<void(PathKey, VertexId)>& sink) {
  std::vector<bool> on_path(graph.NumVertices(), false);
  std::vector<Label> labels;
  labels.reserve(options.max_edges + 1);
  for (VertexId v = begin_vertex; v < end_vertex; ++v) {
    labels.assign(1, graph.label(v));
    if (options.include_single_vertices) sink(PackPathKey(labels), v);
    on_path[v] = true;
    Extend(graph, options, v, v, labels, on_path, sink);
    on_path[v] = false;
  }
}

void EnumeratePaths(const Graph& graph, const PathEnumeratorOptions& options,
                    const std::function<void(PathKey, VertexId)>& sink) {
  EnumeratePathsFromRange(graph, options, 0,
                          static_cast<VertexId>(graph.NumVertices()), sink);
}

PathFeatureCounts CountPathFeatures(const Graph& graph,
                                    const PathEnumeratorOptions& options) {
  PathFeatureCounts counts;
  EnumeratePaths(graph, options,
                 [&counts](PathKey key, VertexId) { ++counts[key]; });
  return counts;
}

}  // namespace igq
