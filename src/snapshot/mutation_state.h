// The kSectionMutationState payload (docs/FORMATS.md): the database's
// mutation epoch and tombstone list at save time. Engines hold the database
// const, so a load VALIDATES the section against the caller's database
// instead of applying it — a snapshot taken at one mutation state is never
// restored over another (the cached answers and, for warm starts, the
// method index would silently disagree with the dataset).
#ifndef IGQ_SNAPSHOT_MUTATION_STATE_H_
#define IGQ_SNAPSHOT_MUTATION_STATE_H_

#include <cstdint>
#include <string>

#include "methods/method.h"
#include "snapshot/snapshot.h"

namespace igq {
namespace snapshot {

class BinaryReader;
class BinaryWriter;

/// Serializes `db`'s mutation state: u32 payload version, u64 epoch,
/// u64 tombstone count, then the tombstone ids (u32 each, strictly
/// ascending). Only written when the database has ever mutated
/// (mutation_epoch != 0) — never-mutated snapshots stay byte-identical to
/// the pre-mutation format.
void WriteMutationState(BinaryWriter& writer, const GraphDatabase& db);

/// Parses a WriteMutationState payload and validates it against `db`.
/// Returns false — filling `error` when non-null — on malformed bytes, an
/// unknown payload version, tombstone ids that are out of range
/// (>= db.graphs.size()), unsorted, or duplicated, or a tombstone
/// list/epoch that differs from the database's current state. On success
/// fills `epoch` and `num_tombstones` (either may be null). `kind`, when
/// non-null, classifies the failure: malformed bytes are kCorrupt, an
/// unknown payload version is kVersionSkew, and a well-formed state that
/// disagrees with `db` is kDatasetDivergence.
bool ValidateMutationState(BinaryReader& reader, const GraphDatabase& db,
                           uint64_t* epoch, size_t* num_tombstones,
                           std::string* error,
                           SnapshotErrorKind* kind = nullptr);

}  // namespace snapshot
}  // namespace igq

#endif  // IGQ_SNAPSHOT_MUTATION_STATE_H_
