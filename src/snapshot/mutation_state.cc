#include "snapshot/mutation_state.h"

#include "snapshot/serializer.h"

namespace igq {
namespace snapshot {
namespace {

/// Payload version of the mutation-state section.
constexpr uint32_t kMutationStateVersion = 1;

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

void SetKind(SnapshotErrorKind* kind, SnapshotErrorKind value) {
  if (kind != nullptr) *kind = value;
}

}  // namespace

void WriteMutationState(BinaryWriter& writer, const GraphDatabase& db) {
  writer.WriteU32(kMutationStateVersion);
  writer.WriteU64(db.mutation_epoch);
  writer.WriteU64(db.tombstones.size());
  for (GraphId id : db.tombstones) writer.WriteU32(id);
}

bool ValidateMutationState(BinaryReader& reader, const GraphDatabase& db,
                           uint64_t* epoch, size_t* num_tombstones,
                           std::string* error, SnapshotErrorKind* kind) {
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) {
    SetError(error, "mutation-state section is truncated");
    SetKind(kind, SnapshotErrorKind::kCorrupt);
    return false;
  }
  if (version != kMutationStateVersion) {
    SetError(error, "mutation-state section has an unknown payload version");
    SetKind(kind, SnapshotErrorKind::kVersionSkew);
    return false;
  }
  uint64_t stamped_epoch = 0, count = 0;
  if (!reader.ReadU64(&stamped_epoch) || !reader.ReadU64(&count)) {
    SetError(error, "mutation-state section is truncated");
    SetKind(kind, SnapshotErrorKind::kCorrupt);
    return false;
  }
  // Well-formedness first (the corruption-sweep contract: a damaged id is
  // rejected as such even when the comparison below would also fail), then
  // equality with the database's live state.
  if (count > db.graphs.size()) {
    SetError(error, "mutation-state section: more tombstones than graphs");
    SetKind(kind, SnapshotErrorKind::kCorrupt);
    return false;
  }
  uint32_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    if (!reader.ReadU32(&id)) {
      SetError(error, "mutation-state section is truncated");
      SetKind(kind, SnapshotErrorKind::kCorrupt);
      return false;
    }
    if (id >= db.graphs.size()) {
      SetError(error, "mutation-state section: tombstone id out of range");
      SetKind(kind, SnapshotErrorKind::kCorrupt);
      return false;
    }
    if (i > 0 && id <= previous) {
      SetError(error,
               "mutation-state section: tombstone ids not strictly ascending");
      SetKind(kind, SnapshotErrorKind::kCorrupt);
      return false;
    }
    previous = id;
    if (i >= db.tombstones.size() || db.tombstones[i] != id) {
      SetError(error,
               "snapshot was taken at a different mutation state than the "
               "database (tombstones differ)");
      SetKind(kind, SnapshotErrorKind::kDatasetDivergence);
      return false;
    }
  }
  if (count != db.tombstones.size() || stamped_epoch != db.mutation_epoch) {
    SetError(error,
             "snapshot was taken at a different mutation state than the "
             "database (epoch or tombstone count differs)");
    SetKind(kind, SnapshotErrorKind::kDatasetDivergence);
    return false;
  }
  if (epoch != nullptr) *epoch = stamped_epoch;
  if (num_tombstones != nullptr) *num_tombstones = count;
  return true;
}

}  // namespace snapshot
}  // namespace igq
