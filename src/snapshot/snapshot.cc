#include "snapshot/snapshot.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "snapshot/serializer.h"

namespace igq {
namespace snapshot {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

void SetKind(SnapshotErrorKind* kind, SnapshotErrorKind value) {
  if (kind != nullptr) *kind = value;
}

}  // namespace

const char* SnapshotErrorKindName(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kNone: return "none";
    case SnapshotErrorKind::kIo: return "io";
    case SnapshotErrorKind::kCorrupt: return "corrupt";
    case SnapshotErrorKind::kVersionSkew: return "version-skew";
    case SnapshotErrorKind::kDatasetDivergence: return "dataset-divergence";
  }
  return "?";
}

void WriteSnapshotHeader(std::ostream& out) {
  BinaryWriter writer(out);
  writer.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  writer.WriteU32(kSnapshotVersion);
}

void WriteSection(std::ostream& out, uint32_t id, const std::string& payload) {
  BinaryWriter writer(out);
  writer.WriteU32(id);
  writer.WriteU64(payload.size());
  if (!payload.empty()) writer.WriteBytes(payload.data(), payload.size());
  // The checksum covers the id and size fields too, so a bit flip in the
  // framing (not just the payload) is caught.
  writer.WriteU32(writer.crc());
}

void WriteSnapshotEnd(std::ostream& out) {
  BinaryWriter writer(out);
  writer.WriteU32(kSectionEnd);
}

bool ReadSnapshotHeader(std::istream& in, std::string* error,
                        SnapshotErrorKind* kind) {
  BinaryReader reader(in);
  uint8_t magic[4] = {0, 0, 0, 0};
  if (!reader.ReadBytes(magic, sizeof(magic))) {
    SetError(error, "truncated snapshot: missing magic");
    SetKind(kind, SnapshotErrorKind::kCorrupt);
    return false;
  }
  for (size_t i = 0; i < sizeof(magic); ++i) {
    if (magic[i] != kSnapshotMagic[i]) {
      SetError(error, "not an iGQ snapshot (bad magic)");
      SetKind(kind, SnapshotErrorKind::kCorrupt);
      return false;
    }
  }
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) {
    SetError(error, "truncated snapshot: missing version");
    SetKind(kind, SnapshotErrorKind::kCorrupt);
    return false;
  }
  if (version != kSnapshotVersion) {
    SetError(error, "unsupported snapshot version " + std::to_string(version) +
                        " (expected " + std::to_string(kSnapshotVersion) + ")");
    SetKind(kind, SnapshotErrorKind::kVersionSkew);
    return false;
  }
  return true;
}

bool ReadSection(std::istream& in, Section* section, std::string* error,
                 SnapshotErrorKind* kind) {
  // Every failure mode below is damaged bytes.
  SetKind(kind, SnapshotErrorKind::kCorrupt);
  BinaryReader reader(in);
  uint32_t id = 0;
  if (!reader.ReadU32(&id)) {
    SetError(error, "truncated snapshot: missing section id or end marker");
    return false;
  }
  if (id == kSectionEnd) {
    section->id = kSectionEnd;
    section->payload.clear();
    SetKind(kind, SnapshotErrorKind::kNone);
    return true;
  }
  uint64_t size = 0;
  if (!reader.ReadU64(&size)) {
    SetError(error, "truncated snapshot: missing section size");
    return false;
  }
  if (size > kMaxSectionBytes) {
    SetError(error, "corrupt snapshot: section size " + std::to_string(size) +
                        " exceeds the " + std::to_string(kMaxSectionBytes) +
                        "-byte limit");
    return false;
  }
  // Forged-length guard: on a seekable stream, a declared size larger than
  // the bytes actually remaining (payload + 4-byte checksum) is rejected
  // BEFORE any buffer growth — no allocation ever happens for a length the
  // file cannot back.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1) && end >= here &&
        size + 4 > static_cast<uint64_t>(end - here)) {
      SetError(error, "corrupt snapshot: section " + std::to_string(id) +
                          " declares " + std::to_string(size) +
                          " bytes but only " +
                          std::to_string(static_cast<uint64_t>(end - here)) +
                          " remain");
      return false;
    }
  }
  // Chunked read: grow the buffer as bytes actually arrive, so a corrupted
  // size field hits EOF instead of a multi-gigabyte allocation.
  constexpr size_t kChunk = size_t{1} << 20;
  std::string payload;
  while (payload.size() < size) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(kChunk, size - payload.size()));
    const size_t offset = payload.size();
    payload.resize(offset + want);
    if (!reader.ReadBytes(payload.data() + offset, want)) {
      SetError(error, "truncated snapshot: section " + std::to_string(id) +
                          " payload cut short");
      return false;
    }
  }
  const uint32_t actual_crc = reader.crc();  // id + size + payload bytes
  uint32_t stored_crc = 0;
  if (!reader.ReadU32(&stored_crc)) {
    SetError(error, "truncated snapshot: section " + std::to_string(id) +
                        " missing checksum");
    return false;
  }
  if (stored_crc != actual_crc) {
    SetError(error, "corrupt snapshot: checksum mismatch in section " +
                        std::to_string(id));
    return false;
  }
  section->id = id;
  section->payload = std::move(payload);
  SetKind(kind, SnapshotErrorKind::kNone);
  return true;
}

}  // namespace snapshot
}  // namespace igq
