// The iGQ snapshot container format (docs/FORMATS.md): a fixed header
// (magic + format version) followed by a sequence of checksummed sections
// and a terminating end marker. Sections carry opaque payloads — the cache
// state produced by QueryCache::Save() and the method index produced by
// Method::SaveIndex() — so the container can evolve (new section ids)
// without breaking old readers, and a reader can skip sections it does not
// understand.
//
// Every section's payload is read fully into memory and its CRC-32
// verified *before* any payload parsing happens; corrupted or truncated
// files are therefore rejected with an error message, never parsed.
#ifndef IGQ_SNAPSHOT_SNAPSHOT_H_
#define IGQ_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace igq {
namespace snapshot {

/// First bytes of every snapshot file: 'I' 'G' 'Q' 'S'.
inline constexpr uint8_t kSnapshotMagic[4] = {'I', 'G', 'Q', 'S'};
/// Container format version; bumped on any incompatible layout change.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Known section ids. kSectionEnd terminates the file and has no payload.
enum SectionId : uint32_t {
  kSectionEnd = 0,
  kSectionCache = 1,          // QueryCache::Save() payload
  kSectionMethodIndex = 2,    // method name + Method::SaveIndex() payload
  kSectionShardedCache = 3,   // ShardedQueryCache::Save() payload
  kSectionMutationState = 4,  // mutation epoch + dataset tombstones
};

/// Hard ceiling on a single section payload (guards against allocating
/// from a corrupted length field before the checksum can catch it).
inline constexpr uint64_t kMaxSectionBytes = uint64_t{1} << 31;

/// One decoded section: its id and raw (checksum-verified) payload bytes.
struct Section {
  uint32_t id = kSectionEnd;
  std::string payload;
};

/// Broad classification of why a snapshot was rejected, for callers that
/// act differently per class (igq_tool maps these to distinct exit codes;
/// recovery's ladder logs them). The `error` strings stay the precise
/// human-readable account.
enum class SnapshotErrorKind : uint8_t {
  kNone = 0,
  /// The underlying stream/file could not be read at all.
  kIo,
  /// Damaged bytes: bad magic, truncation, framing, checksum mismatch,
  /// malformed payloads.
  kCorrupt,
  /// A well-formed file written by an incompatible format version.
  kVersionSkew,
  /// A well-formed, current-version file that belongs to a different
  /// dataset, mutation state, method, or engine configuration.
  kDatasetDivergence,
};

const char* SnapshotErrorKindName(SnapshotErrorKind kind);

/// Writes the snapshot magic + version.
void WriteSnapshotHeader(std::ostream& out);

/// Frames `payload` as a section: u32 id, u64 size, bytes, u32 CRC-32.
void WriteSection(std::ostream& out, uint32_t id, const std::string& payload);

/// Writes the end marker (a bare kSectionEnd id).
void WriteSnapshotEnd(std::ostream& out);

/// Validates magic + version. On failure returns false and, when `error`
/// is non-null, stores a human-readable reason (and classifies it into
/// `kind` when non-null: kCorrupt for bad magic/truncation, kVersionSkew
/// for a version mismatch).
bool ReadSnapshotHeader(std::istream& in, std::string* error,
                        SnapshotErrorKind* kind = nullptr);

/// Reads the next section into `section`, verifying its checksum (which
/// covers the id and size fields as well as the payload). The end marker
/// yields id == kSectionEnd with an empty payload; because the end marker
/// itself is unchecksummed, readers must require EOF right after it — a
/// section id corrupted into 0 then shows up as trailing garbage.
/// Returns false on truncation, oversized payloads, or checksum mismatch
/// (all kCorrupt in `kind`).
bool ReadSection(std::istream& in, Section* section, std::string* error,
                 SnapshotErrorKind* kind = nullptr);

}  // namespace snapshot
}  // namespace igq

#endif  // IGQ_SNAPSHOT_SNAPSHOT_H_
