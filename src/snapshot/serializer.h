// Low-level binary serialization primitives for the persistence subsystem:
// little-endian integer/double/string encoders with a running CRC-32, plus
// the shared binary graph encoding used by both the snapshot format and the
// binary graph-collection files (see docs/FORMATS.md).
//
// Both classes are deliberately byte-oriented — values are assembled from
// individual bytes, so the encoded form is identical on any host
// endianness. Readers never trust embedded counts blindly: containers grow
// as bytes actually arrive, so a corrupted length field produces a clean
// read failure instead of a giant allocation.
#ifndef IGQ_SNAPSHOT_SERIALIZER_H_
#define IGQ_SNAPSHOT_SERIALIZER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace igq {
namespace snapshot {

/// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of
/// `size` bytes, continuing from `crc` (pass 0 to start a fresh checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// Streams little-endian primitives to an std::ostream while accumulating
/// a CRC-32 of every byte written since construction (or the last
/// ResetCrc()). ok() turns false once the underlying stream fails.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  /// IEEE-754 bit pattern as a u64.
  void WriteDouble(double value);
  /// u64 byte length followed by the raw bytes.
  void WriteString(const std::string& value);

  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }
  bool ok() const;

 private:
  std::ostream* out_;
  uint32_t crc_ = 0;
};

/// Mirror of BinaryWriter. Every Read* returns true on success; the first
/// failure (EOF, stream error, length guard) makes ok() sticky-false and
/// all subsequent reads fail.
class BinaryReader {
 public:
  /// Sentinel for "no byte budget armed" (the default).
  static constexpr uint64_t kNoByteLimit = ~uint64_t{0};

  explicit BinaryReader(std::istream& in) : in_(&in) {}

  bool ReadBytes(void* data, size_t size);
  bool ReadU8(uint8_t* value);
  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  bool ReadDouble(double* value);
  /// Fails (without allocating) if the encoded length exceeds `max_bytes`
  /// or the armed byte budget.
  bool ReadString(std::string* value, size_t max_bytes = 1 << 20);

  /// Arms a byte budget: any subsequent read whose size — or whose
  /// *declared* length, via FitsRemaining/ReadString — exceeds the bytes
  /// remaining fails, with length_guard_tripped() set, BEFORE reading or
  /// allocating anything. Loaders arm this with the enclosing payload or
  /// remaining-file size so an adversarial length field becomes a typed
  /// clean failure instead of a bad_alloc. Pass kNoByteLimit to disarm.
  void LimitRemainingBytes(uint64_t remaining) { remaining_ = remaining; }
  uint64_t remaining_bytes() const { return remaining_; }

  /// Pre-validates a declared byte requirement against the armed budget
  /// without consuming anything: returns false — tripping the length
  /// guard — when `bytes` cannot possibly remain. Loaders call this on a
  /// count field before reserving `count * element_size`.
  bool FitsRemaining(uint64_t bytes);

  /// True when a read failed because a size or declared length exceeded
  /// the armed budget (or ReadString's max_bytes) rather than because the
  /// underlying stream failed — the "forged length field" signature.
  bool length_guard_tripped() const { return length_guard_; }

  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }
  bool ok() const { return ok_; }

 private:
  std::istream* in_;
  uint32_t crc_ = 0;
  uint64_t remaining_ = kNoByteLimit;
  bool ok_ = true;
  bool length_guard_ = false;
};

/// Graph encoding shared by snapshots and binary graph files:
///   u32 num_vertices, num_vertices x u32 label,
///   u32 num_edges,    num_edges x (u32 u, u32 v) with u < v.
void WriteGraph(BinaryWriter& writer, const Graph& graph);

/// Reads one graph; returns false on malformed input (out-of-range vertex
/// ids, duplicate or self-loop edges, truncation).
bool ReadGraph(BinaryReader& reader, Graph* graph);

/// CRC-32 over the binary encoding of every graph in order — a cheap
/// content fingerprint used to detect a snapshot being loaded against a
/// different dataset of coincidentally equal size.
uint32_t DatasetFingerprint(const std::vector<Graph>& graphs);

}  // namespace snapshot
}  // namespace igq

#endif  // IGQ_SNAPSHOT_SERIALIZER_H_
