#include "snapshot/serializer.h"

#include <bit>
#include <istream>
#include <ostream>
#include <streambuf>

namespace igq {
namespace snapshot {
namespace {

// CRC-32 lookup table for polynomial 0xEDB88320, built once.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  crc_ = Crc32(data, size, crc_);
}

void BinaryWriter::WriteU8(uint8_t value) { WriteBytes(&value, 1); }

void BinaryWriter::WriteU32(uint32_t value) {
  uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteBytes(bytes, 4);
}

void BinaryWriter::WriteU64(uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  WriteBytes(bytes, 8);
}

void BinaryWriter::WriteDouble(double value) {
  WriteU64(std::bit_cast<uint64_t>(value));
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  if (!value.empty()) WriteBytes(value.data(), value.size());
}

bool BinaryWriter::ok() const { return out_->good(); }

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (!ok_) return false;
  if (size > remaining_) {
    ok_ = false;
    length_guard_ = true;
    return false;
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_->gcount()) != size) {
    ok_ = false;
    return false;
  }
  if (remaining_ != kNoByteLimit) remaining_ -= size;
  crc_ = Crc32(data, size, crc_);
  return true;
}

bool BinaryReader::FitsRemaining(uint64_t bytes) {
  if (!ok_) return false;
  if (bytes > remaining_) {
    ok_ = false;
    length_guard_ = true;
    return false;
  }
  return true;
}

bool BinaryReader::ReadU8(uint8_t* value) { return ReadBytes(value, 1); }

bool BinaryReader::ReadU32(uint32_t* value) {
  uint8_t bytes[4];
  if (!ReadBytes(bytes, 4)) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) *value |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  return true;
}

bool BinaryReader::ReadU64(uint64_t* value) {
  uint8_t bytes[8];
  if (!ReadBytes(bytes, 8)) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) *value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  return true;
}

bool BinaryReader::ReadDouble(double* value) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool BinaryReader::ReadString(std::string* value, size_t max_bytes) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  // Both guards fail before the resize, so a forged length never allocates.
  if (size > max_bytes || size > remaining_) {
    ok_ = false;
    length_guard_ = true;
    return false;
  }
  value->resize(static_cast<size_t>(size));
  if (size == 0) return true;
  return ReadBytes(value->data(), static_cast<size_t>(size));
}

void WriteGraph(BinaryWriter& writer, const Graph& graph) {
  writer.WriteU32(static_cast<uint32_t>(graph.NumVertices()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    writer.WriteU32(graph.label(v));
  }
  writer.WriteU32(static_cast<uint32_t>(graph.NumEdges()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId w : graph.Neighbors(v)) {
      if (v < w) {
        writer.WriteU32(v);
        writer.WriteU32(w);
      }
    }
  }
}

uint32_t DatasetFingerprint(const std::vector<Graph>& graphs) {
  // Stream the canonical graph encoding into a discarding buffer; only the
  // writer's running CRC is kept.
  class NullBuffer : public std::streambuf {
   protected:
    int overflow(int c) override { return c; }
    std::streamsize xsputn(const char*, std::streamsize n) override {
      return n;
    }
  } null_buffer;
  std::ostream null_stream(&null_buffer);
  BinaryWriter writer(null_stream);
  for (const Graph& graph : graphs) WriteGraph(writer, graph);
  return writer.crc();
}

bool ReadGraph(BinaryReader& reader, Graph* graph) {
  uint32_t num_vertices = 0;
  if (!reader.ReadU32(&num_vertices)) return false;
  // Count pre-validation against the armed byte budget (no-op when the
  // caller armed none): a forged vertex/edge count fails here, before the
  // incremental builds below touch it. Labels are 4 bytes each plus the
  // 4-byte edge count; edges are 8 bytes each.
  if (!reader.FitsRemaining(uint64_t{num_vertices} * 4 + 4)) return false;
  Graph g;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    uint32_t label = 0;
    if (!reader.ReadU32(&label)) return false;
    g.AddVertex(label);
  }
  uint32_t num_edges = 0;
  if (!reader.ReadU32(&num_edges)) return false;
  if (!reader.FitsRemaining(uint64_t{num_edges} * 8)) return false;
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0, v = 0;
    if (!reader.ReadU32(&u) || !reader.ReadU32(&v)) return false;
    if (u >= num_vertices || v >= num_vertices) return false;
    if (!g.AddEdge(u, v)) return false;  // self-loop or duplicate
  }
  *graph = std::move(g);
  return true;
}

}  // namespace snapshot
}  // namespace igq
