// Admission control for ConcurrentQueryEngine: a bounded admission queue
// with load shedding. Each admitted query holds "cost" units (its size in
// vertices + edges — a proxy for expected verify work) until it finishes;
// new queries whose cost would push the in-flight total past the watermark
// wait in a bounded queue, and queries beyond the queue bound — or whose
// deadline passes while queued — are shed with a typed outcome instead of
// piling up. Exact-hit fast-path lookups bypass admission entirely (the
// engine probes the canonical index before calling Admit), so cache hits
// stay cheap under overload. See docs/ARCHITECTURE.md "Overload &
// degradation ladder".
#ifndef IGQ_SERVING_ADMISSION_H_
#define IGQ_SERVING_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "serving/budget.h"

namespace igq {
namespace serving {

class AdmissionController {
 public:
  enum class Result : uint8_t {
    kAdmitted = 0,
    kShed,      // queue full (or shedding preferred) — caller rejects
    kDeadline,  // deadline expired while queued
  };

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t expired_in_queue = 0;
    uint64_t inflight_cost = 0;
    size_t waiters = 0;
  };

  /// `watermark` = 0 disables admission control (Admit always succeeds
  /// immediately). `max_waiters` bounds the queue; beyond it, Admit sheds.
  AdmissionController(uint64_t watermark, size_t max_waiters)
      : watermark_(watermark), max_waiters_(max_waiters) {}

  bool enabled() const { return watermark_ != 0; }

  /// Blocks until `cost` units fit under the watermark, the control's
  /// deadline passes, or the queue bound forces a shed. A query whose cost
  /// alone exceeds the watermark is admitted once nothing else is in flight
  /// (otherwise it could never run). On kAdmitted the caller MUST balance
  /// with Release(cost) — use AdmissionTicket. `control` is polled for the
  /// deadline and the external cancel flag while queued.
  Result Admit(uint64_t cost, QueryControl& control);

  void Release(uint64_t cost);

  Stats snapshot() const;

 private:
  const uint64_t watermark_;
  const size_t max_waiters_;
  mutable std::mutex mutex_;
  std::condition_variable capacity_cv_;
  uint64_t inflight_cost_ = 0;
  size_t waiters_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t expired_in_queue_ = 0;
};

/// RAII admission slot: releases the admitted cost on destruction.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionController* controller, uint64_t cost)
      : controller_(controller), cost_(cost) {}
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_), cost_(other.cost_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      controller_ = other.controller_;
      cost_ = other.cost_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { ReleaseNow(); }

 private:
  void ReleaseNow() {
    if (controller_ != nullptr) {
      controller_->Release(cost_);
      controller_ = nullptr;
    }
  }
  AdmissionController* controller_ = nullptr;
  uint64_t cost_ = 0;
};

}  // namespace serving
}  // namespace igq

#endif  // IGQ_SERVING_ADMISSION_H_
