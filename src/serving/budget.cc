#include "serving/budget.h"

namespace igq {
namespace serving {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kStateCap:
      return "state_cap";
    case StopReason::kEmbeddingCap:
      return "embedding_cap";
    case StopReason::kMemoryCap:
      return "memory_cap";
  }
  return "unknown";
}

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kAdmission:
      return "admission";
    case QueryStage::kGateWait:
      return "gate_wait";
    case QueryStage::kFastPath:
      return "fast_path";
    case QueryStage::kSingleflightWait:
      return "singleflight_wait";
    case QueryStage::kFilter:
      return "filter";
    case QueryStage::kProbe:
      return "probe";
    case QueryStage::kVerify:
      return "verify";
    case QueryStage::kComplete:
      return "complete";
  }
  return "unknown";
}

const char* QueryOutcomeKindName(QueryOutcomeKind kind) {
  switch (kind) {
    case QueryOutcomeKind::kCompleted:
      return "completed";
    case QueryOutcomeKind::kPartial:
      return "partial";
    case QueryOutcomeKind::kDeadlineExpired:
      return "deadline_expired";
    case QueryOutcomeKind::kShed:
      return "shed";
    case QueryOutcomeKind::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void QueryControl::Arm(const QueryBudget& budget,
                       const std::atomic<bool>* cancel) {
  budget_ = budget;
  cancel_ = cancel;
  start_ = std::chrono::steady_clock::now();
  has_deadline_ = budget_.deadline_micros > 0;
  if (has_deadline_) {
    deadline_point_ = start_ + std::chrono::microseconds(budget_.deadline_micros);
  }
  limited_ = !budget_.Unlimited() || cancel_ != nullptr;
}

void QueryControl::Latch(StopReason reason) {
  const uint32_t word =
      static_cast<uint32_t>(reason) |
      (static_cast<uint32_t>(stage_.load(std::memory_order_relaxed)) << 8);
  uint32_t expected = 0;
  // First stop wins; losers keep the winner's (reason, stage) pair.
  stop_word_.compare_exchange_strong(expected, word, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
}

bool QueryControl::CheckNow() {
  if (stopped()) return true;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_point_) {
    Latch(StopReason::kDeadline);
    return true;
  }
  if (budget_.max_states != 0 &&
      states_.load(std::memory_order_relaxed) >= budget_.max_states) {
    Latch(StopReason::kStateCap);
    return true;
  }
  if (budget_.max_embeddings != 0 &&
      embeddings_.load(std::memory_order_relaxed) > budget_.max_embeddings) {
    Latch(StopReason::kEmbeddingCap);
    return true;
  }
  return false;
}

bool QueryControl::ChargeStates(uint64_t states) {
  states_.fetch_add(states, std::memory_order_relaxed);
  return CheckNow();
}

bool QueryControl::ChargeEmbedding() {
  const uint64_t count =
      embeddings_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Strictly-greater: with cap K exactly K embeddings reach the visitor.
  if (budget_.max_embeddings != 0 && count > budget_.max_embeddings) {
    Latch(StopReason::kEmbeddingCap);
    return true;
  }
  return stopped();
}

int64_t QueryControl::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

QueryOutcome MakeStoppedOutcome(const QueryControl& control, bool partial) {
  QueryOutcome outcome;
  outcome.reason = control.reason();
  outcome.stage = control.stage_at_stop();
  outcome.elapsed_micros = control.ElapsedMicros();
  if (partial) {
    outcome.kind = QueryOutcomeKind::kPartial;
  } else if (outcome.reason == StopReason::kCancelled) {
    outcome.kind = QueryOutcomeKind::kCancelled;
  } else {
    outcome.kind = QueryOutcomeKind::kDeadlineExpired;
  }
  return outcome;
}

void OutcomeAccumulator::Record(const QueryOutcome& outcome) {
  switch (outcome.kind) {
    case QueryOutcomeKind::kCompleted:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryOutcomeKind::kPartial:
      partial_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryOutcomeKind::kDeadlineExpired:
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryOutcomeKind::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryOutcomeKind::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

OutcomeCounters OutcomeAccumulator::Snapshot() const {
  OutcomeCounters counters;
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.partial = partial_.load(std::memory_order_relaxed);
  counters.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.cancelled = cancelled_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace serving
}  // namespace igq
