#include "serving/admission.h"

#include <chrono>

namespace igq {
namespace serving {

AdmissionController::Result AdmissionController::Admit(uint64_t cost,
                                                       QueryControl& control) {
  if (!enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++admitted_;
    inflight_cost_ += cost;
    return Result::kAdmitted;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  auto fits = [&] {
    // An oversized query (cost > watermark) runs alone: admit it only when
    // nothing else holds cost, so it cannot starve forever.
    return inflight_cost_ + cost <= watermark_ || inflight_cost_ == 0;
  };
  if (!fits()) {
    if (waiters_ >= max_waiters_) {
      ++shed_;
      return Result::kShed;
    }
    ++waiters_;
    for (;;) {
      if (control.has_deadline()) {
        if (!capacity_cv_.wait_until(lock, control.deadline(),
                                     [&] { return fits(); })) {
          --waiters_;
          ++expired_in_queue_;
          control.CheckNow();  // latch the typed stop (kDeadline) too
          return Result::kDeadline;
        }
        break;  // predicate held
      }
      // No deadline: wake periodically to notice external cancellation.
      capacity_cv_.wait_for(lock, std::chrono::milliseconds(50));
      if (fits()) break;
      if (control.CheckNow()) {
        --waiters_;
        ++expired_in_queue_;
        return Result::kDeadline;
      }
    }
    --waiters_;
  }
  ++admitted_;
  inflight_cost_ += cost;
  return Result::kAdmitted;
}

void AdmissionController::Release(uint64_t cost) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_cost_ = cost <= inflight_cost_ ? inflight_cost_ - cost : 0;
  }
  capacity_cv_.notify_all();
}

AdmissionController::Stats AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.expired_in_queue = expired_in_queue_;
  stats.inflight_cost = inflight_cost_;
  stats.waiters = waiters_;
  return stats;
}

}  // namespace serving
}  // namespace igq
