// Query lifecycle control: per-query budgets (wall-clock deadline,
// recursion-state / embedding / candidate-memory caps), cooperative
// cancellation, and the typed QueryOutcome the engines surface for every
// query — completed, partial (degradation ladder), deadline_expired, shed,
// or cancelled. See docs/CONCURRENCY.md "Cancellation protocol" and
// docs/ARCHITECTURE.md "Overload & degradation ladder".
//
// Threading model: one QueryControl belongs to one query. The owning stream
// arms it and reads the outcome; during the verify stage borrowed VerifyPool
// workers charge search states into it concurrently, so the counters and the
// stop word are atomics. The external cancel flag (CancelSource) may be
// flipped from any thread at any time; it is only ever polled, never waited
// on, so cancellation latency is bounded by the polling interval
// (kBudgetCheckInterval search states, or one pipeline-stage boundary).
#ifndef IGQ_SERVING_BUDGET_H_
#define IGQ_SERVING_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace igq {
namespace serving {

/// Why a query stopped early. kNone means it is still running (or ran to
/// completion). Everything else is sticky: the first stop wins and later
/// checks keep returning it.
enum class StopReason : uint8_t {
  kNone = 0,
  kCancelled,     // external CancelSource flag was set
  kDeadline,      // wall-clock deadline passed
  kStateCap,      // recursion-state cap exhausted
  kEmbeddingCap,  // embedding-count cap exhausted
  kMemoryCap,     // candidate-set cap exceeded (post-filter)
};

const char* StopReasonName(StopReason reason);

/// Pipeline stage a query was in when it stopped (or kComplete). The stages
/// mirror the engine pipelines: admission queue -> writer-gate wait ->
/// exact-hit fast path -> singleflight wait -> filter -> probe/prune ->
/// verify.
enum class QueryStage : uint8_t {
  kAdmission = 0,
  kGateWait,
  kFastPath,
  kSingleflightWait,
  kFilter,
  kProbe,
  kVerify,
  kComplete,
};

const char* QueryStageName(QueryStage stage);

/// Final disposition of one query, the top of every engine return path.
enum class QueryOutcomeKind : uint8_t {
  kCompleted = 0,        // full answer
  kPartial,              // cache-composed partial answer (degradation ladder)
  kDeadlineExpired,      // budget exhausted (deadline or a cap), no answer
  kShed,                 // rejected by admission control, no work done
  kCancelled,            // external cancellation, no answer
};

const char* QueryOutcomeKindName(QueryOutcomeKind kind);

/// Per-query resource budget. Zero means "unlimited" for every field, so a
/// default-constructed budget is a no-op and the unbudgeted engine paths
/// stay bit-identical.
struct QueryBudget {
  /// Wall-clock deadline in microseconds from the moment the engine accepts
  /// the query (QueryControl::Arm). 0 = no deadline.
  int64_t deadline_micros = 0;
  /// Cap on recursion states explored across all isomorphism tests run for
  /// this query (filter-verify and probe). Enforced every
  /// kBudgetCheckInterval states, so the effective cap is rounded up to the
  /// polling interval. 0 = unlimited.
  uint64_t max_states = 0;
  /// Cap on embeddings enumerated (only enumeration visitors reach it;
  /// boolean containment stops at the first embedding). 0 = unlimited.
  uint64_t max_embeddings = 0;
  /// Cap on the post-filter candidate-set size — the query's dominant memory
  /// driver. 0 = unlimited.
  size_t max_candidates = 0;

  bool Unlimited() const {
    return deadline_micros == 0 && max_states == 0 && max_embeddings == 0 &&
           max_candidates == 0;
  }
};

/// External cancellation handle: the caller keeps the source, the engine
/// polls the flag through the QueryControl armed with it. Thread-safe.
class CancelSource {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  const std::atomic<bool>* flag() const { return &cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The per-query control block threaded through the pipeline. Armed once by
/// the engine; long-running stages charge work into it and poll; the first
/// exhausted limit (or the cancel flag) latches a sticky stop.
///
/// IMPORTANT: once stopped() is true, the results of any in-flight search
/// are garbage — an interrupted EnumerateEmbeddings returns false exactly
/// like an exhausted one, so PlanContains aliases a budget-stop to "found".
/// Engines must check stopped() after every stage (and VerifyPool after
/// every item) and discard results produced at or after the stop.
class QueryControl {
 public:
  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Starts the clock. `cancel` may be null (no external cancellation).
  void Arm(const QueryBudget& budget, const std::atomic<bool>* cancel);

  /// True when any limit or the cancel flag is active — the engines take the
  /// budgeted (deferred-commit) path only in that case, keeping the
  /// unlimited path byte-for-byte identical to the pre-lifecycle code.
  bool limited() const { return limited_; }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const {
    return deadline_point_;
  }

  bool stopped() const {
    return stop_word_.load(std::memory_order_acquire) != 0;
  }
  StopReason reason() const {
    return static_cast<StopReason>(stop_word_.load(std::memory_order_acquire) &
                                   0xff);
  }
  /// Stage recorded by the stop-winning thread.
  QueryStage stage_at_stop() const {
    return static_cast<QueryStage>(
        (stop_word_.load(std::memory_order_acquire) >> 8) & 0xff);
  }

  /// Pipeline-position marker, set by the owning stream between stages (the
  /// borrowed verify workers never move it).
  void set_stage(QueryStage stage) {
    stage_.store(static_cast<uint8_t>(stage), std::memory_order_relaxed);
  }
  QueryStage stage() const {
    return static_cast<QueryStage>(stage_.load(std::memory_order_relaxed));
  }

  /// Full check: cancel flag, deadline, accumulated caps. Returns stopped().
  /// Called at stage boundaries and from the amortized match-core
  /// checkpoint — never per search state.
  bool CheckNow();

  /// Charges `states` recursion states, then runs the full check. This is
  /// the match-core checkpoint body (called every kBudgetCheckInterval
  /// states per searching thread).
  bool ChargeStates(uint64_t states);

  /// Charges one enumerated embedding and checks only the embedding cap —
  /// no clock read, cheap enough per embedding.
  bool ChargeEmbedding();

  /// Post-filter memory-cap check: latches kMemoryCap when the candidate
  /// set exceeds the budget's max_candidates. Returns stopped().
  bool ChargeCandidates(size_t count) {
    if (budget_.max_candidates != 0 && count > budget_.max_candidates) {
      Latch(StopReason::kMemoryCap);
    }
    return stopped();
  }

  uint64_t states_charged() const {
    return states_.load(std::memory_order_relaxed);
  }
  int64_t ElapsedMicros() const;

 private:
  void Latch(StopReason reason);

  QueryBudget budget_;
  const std::atomic<bool>* cancel_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point deadline_point_{};
  bool limited_ = false;
  bool has_deadline_ = false;
  std::atomic<uint64_t> states_{0};
  std::atomic<uint64_t> embeddings_{0};
  /// reason (low byte) | stage-at-stop (next byte); 0 = running. A single
  /// word so the first Latch wins atomically and readers see a consistent
  /// (reason, stage) pair.
  std::atomic<uint32_t> stop_word_{0};
  std::atomic<uint8_t> stage_{static_cast<uint8_t>(QueryStage::kAdmission)};
};

/// What one query ultimately produced. `stage` is where a non-completed
/// query stopped; `reason` the limit that fired; `elapsed_micros` wall time
/// from Arm to outcome.
struct QueryOutcome {
  QueryOutcomeKind kind = QueryOutcomeKind::kCompleted;
  QueryStage stage = QueryStage::kComplete;
  StopReason reason = StopReason::kNone;
  int64_t elapsed_micros = 0;

  bool answer_usable() const {
    return kind == QueryOutcomeKind::kCompleted ||
           kind == QueryOutcomeKind::kPartial;
  }
};

/// Builds the outcome for a control that stopped (maps the stop reason to
/// the outcome kind; `partial` upgrades a budget-stop that salvaged a
/// cache-composed answer).
QueryOutcome MakeStoppedOutcome(const QueryControl& control, bool partial);

/// Per-request lifecycle parameters: the budget plus an optional external
/// cancellation flag. Fields left at defaults fall back to the engine's
/// ServingOptions defaults.
struct QueryRequest {
  QueryBudget budget;
  const CancelSource* cancel = nullptr;
};

/// Engine-level outcome counters: snapshot-independent serving stats (never
/// serialized — a recovered engine starts its overload history fresh).
/// Thread-safe; one per engine.
struct OutcomeCounters {
  uint64_t completed = 0;
  uint64_t partial = 0;
  uint64_t deadline_expired = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;

  uint64_t total() const {
    return completed + partial + deadline_expired + shed + cancelled;
  }
};

class OutcomeAccumulator {
 public:
  void Record(const QueryOutcome& outcome);
  OutcomeCounters Snapshot() const;

 private:
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> partial_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> cancelled_{0};
};

}  // namespace serving
}  // namespace igq

#endif  // IGQ_SERVING_BUDGET_H_
